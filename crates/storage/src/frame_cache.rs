//! The shared snapshot frame cache behind zero-copy cold starts.
//!
//! The paper's core observation is that cold starts repeatedly pay for
//! the *same* guest-memory pages; "How Low Can You Go?" (Tan et al.)
//! shows page-cache residency and cross-start reuse set the practical
//! cold-start floor. This module is that reuse layer for the *functional*
//! pipeline, and it is **content-addressed**: extents whose bytes are
//! identical — the runtime/libc/interpreter pages that every function
//! cloned from one runtime image shares — are held **once fleet-wide**,
//! no matter how many snapshot files they appear in.
//!
//! ## Two-level structure
//!
//! * The **extent index** maps `(FileId, byte offset, byte len)` to a
//!   refcounted *content entry*, remembering the backing file's content
//!   [`generation`](FileStore::generation) at load time.
//! * The **content store** holds each distinct byte string once, as a
//!   [`guest_mem::FrameBytes`] (`Arc<Vec<u8>>`) buffer keyed by a 64-bit
//!   FNV-1a hash of the bytes (verified byte-for-byte on every match, so
//!   a hash collision can never alias two different extents). A content
//!   entry lives exactly as long as index entries reference it.
//!
//! * The **first** cold start of a function misses: the extent is read
//!   from the [`FileStore`] once. If an identical extent is already
//!   cached — any file, any cluster shard — the index entry attaches to
//!   it and no new bytes are held ([`FrameCacheStats::deduped`]).
//! * **Every subsequent** cold start of the same function — from any
//!   invocation lane of any cluster shard — hits: the install is a
//!   refcount bump, zero byte copies, no store read.
//!
//! ## Bounded growth
//!
//! The content store is capacity-budgeted
//! ([`SnapshotFrameCache::set_budget`]): when deduped bytes exceed the
//! budget, whole content entries are evicted in LRU order (an intrusive
//! doubly-linked list threaded through the content slab, the same O(1)
//! design as [`crate::PageCache`]). Eviction only drops the *cache's*
//! reference: guest memories aliasing the buffer keep it alive through
//! their own `Arc` clones, so an evicted extent can never free or
//! mutate live guest frames — the next cold start simply re-reads the
//! store. The default budget is unbounded, matching the pre-budget
//! behaviour.
//!
//! ## Staleness is structurally impossible
//!
//! Every index entry records the backing file's content generation at
//! load time and re-validates it on each lookup: a rewritten file
//! (re-record, `pad_working_set`, snapshot re-generation, diff-snapshot
//! merge — anything that mutates bytes) makes all of its cached extents
//! misses automatically, so a stale byte can never be served even if a
//! caller forgets to invalidate. The load path re-checks the generation
//! *after* reading the store too, so a rewrite landing mid-read can
//! never publish freshly-written bytes under the pre-write generation
//! (the loser serves its bytes uncached and counts
//! [`raced`](FrameCacheStats::raced), not a miss). Explicit
//! [`invalidate_file`](SnapshotFrameCache::invalidate_file) /
//! [`clear`](SnapshotFrameCache::clear) calls exist to release the
//! memory eagerly (the orchestrator issues them on re-record,
//! `pad_working_set` and `drop_caches`).
//!
//! One cache is shared across all shards of a cluster: per-shard
//! [`FileStore`] namespacing already guarantees `(FileId, extent)` keys
//! from different shards never collide — and identical bytes from
//! *different* shards still collapse onto one content entry.

use std::collections::HashMap;
use std::fmt;

use guest_mem::FrameBytes;
use parking_lot::Mutex;

use crate::file_store::{FileId, FileStore};

/// Counters for the cache's effectiveness (asserted by the perf
/// regression harness: repeat cold starts must be served by aliasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCacheStats {
    /// Lookups served from a live cached extent (zero-copy).
    pub hits: u64,
    /// Lookups that read the backing store and populated an index entry
    /// (includes generation-mismatch reloads).
    pub misses: u64,
    /// Lookups that read the store but did **not** populate: the load
    /// lost either to a concurrent identical load (coalesced onto the
    /// winner's entry) or to a concurrent rewrite of the backing file
    /// (the bytes are served uncached — publishing them under the
    /// pre-rewrite generation would cache stale bytes).
    pub raced: u64,
    /// Index entries dropped by explicit invalidation
    /// (`invalidate_file`, `clear`).
    pub invalidated: u64,
    /// Content entries created (a populating miss whose bytes were not
    /// already cached).
    pub admitted: u64,
    /// Populating misses whose bytes were already cached under another
    /// extent — the index entry attached to the existing content entry
    /// instead of holding a second copy.
    pub deduped: u64,
    /// Content entries evicted by the capacity budget (each drops all of
    /// its extent mappings; bytes still aliased by guest memory stay
    /// alive through their own refcounts).
    pub evicted: u64,
    /// Live extent-index entries.
    pub entries: u64,
    /// Live content entries (deduplicated byte strings).
    pub content_entries: u64,
    /// Bytes held by live content entries — deduplicated content is
    /// counted **once**, however many extents map onto it (cache copies
    /// only; aliased guest frames share these same allocations).
    pub bytes: u64,
}

/// Per-request attribution of frame-cache activity: how many lookups
/// *one* invocation resolved as hits, populating misses, and raced
/// loads. The cache's global [`FrameCacheStats`] aggregate the fleet;
/// this delta is threaded through the lookup paths
/// ([`SnapshotFrameCache::get_or_load_tracked`]) so each telemetry span
/// carries the counts of its own invocation, even when many invocations
/// share the cache concurrently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCacheDelta {
    /// Lookups this request served from a live cached extent.
    pub hits: u64,
    /// Lookups this request resolved by reading the store and populating.
    pub misses: u64,
    /// Lookups this request resolved by a raced (coalesced or
    /// rewrite-raced) store read.
    pub raced: u64,
}

impl FrameCacheDelta {
    /// Total lookups attributed to the request.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.raced
    }
}

impl std::ops::AddAssign for FrameCacheDelta {
    fn add_assign(&mut self, rhs: FrameCacheDelta) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.raced += rhs.raced;
    }
}

impl std::ops::Add for FrameCacheDelta {
    type Output = FrameCacheDelta;
    fn add(mut self, rhs: FrameCacheDelta) -> FrameCacheDelta {
        self += rhs;
        self
    }
}

/// The backing file of a cached extent vanished mid-load: an unregister
/// raced a concurrent cold start. Callers degrade to a plain store read
/// (or surface a clean serve failure) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCacheGone(pub FileId);

impl fmt::Display for FrameCacheGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame-cache load from dead {}", self.0)
    }
}

impl std::error::Error for FrameCacheGone {}

/// An extent's identity: `(file, byte offset, byte len)`.
type ExtentKey = (FileId, u64, u64);

/// Null link in the content-entry LRU list.
const NIL: u32 = u32::MAX;

/// One deduplicated byte string: the bytes, the extents mapping onto
/// them (the refcount is `keys.len()`), and intrusive LRU links (MRU
/// towards `head`).
#[derive(Debug)]
struct ContentEntry {
    hash: u64,
    bytes: FrameBytes,
    keys: Vec<ExtentKey>,
    prev: u32,
    next: u32,
}

/// All mutable cache state under one lock: the hit path updates LRU
/// recency, so even lookups write.
#[derive(Debug)]
struct Inner {
    /// Extent -> (content generation at load time, content slab index).
    index: HashMap<ExtentKey, (u64, u32)>,
    /// Content slab; freed slots are recycled via `free`.
    slab: Vec<Option<ContentEntry>>,
    /// (bytes hash, bytes len) -> slab indices (collision bucket; bytes
    /// are compared on every match, so len > 1 only on a real FNV
    /// collision).
    by_hash: HashMap<(u64, u64), Vec<u32>>,
    free: Vec<u32>,
    /// Most recently used content entry, or NIL.
    head: u32,
    /// Least recently used content entry (eviction victim), or NIL.
    tail: u32,
    /// Bytes held by live content entries (deduped content once).
    bytes: u64,
    /// Capacity budget in bytes; `u64::MAX` = unbounded.
    budget: u64,
    hits: u64,
    misses: u64,
    raced: u64,
    invalidated: u64,
    admitted: u64,
    deduped: u64,
    evicted: u64,
}

impl Inner {
    /// Unlinks content entry `n` from the LRU list (it must be linked).
    fn unlink(&mut self, n: u32) {
        let (prev, next) = {
            let e = self.slab[n as usize].as_ref().expect("linked entry");
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].as_mut().expect("live prev").next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].as_mut().expect("live next").prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links content entry `n` at the MRU end.
    fn link_front(&mut self, n: u32) {
        {
            let e = self.slab[n as usize].as_mut().expect("live entry");
            e.prev = NIL;
            e.next = self.head;
        }
        if self.head != NIL {
            self.slab[self.head as usize].as_mut().expect("live head").prev = n;
        } else {
            self.tail = n;
        }
        self.head = n;
    }

    /// Refreshes recency of content entry `n`.
    fn touch(&mut self, n: u32) {
        if self.head != n {
            self.unlink(n);
            self.link_front(n);
        }
    }

    fn bytes_of(&self, n: u32) -> FrameBytes {
        self.slab[n as usize].as_ref().expect("live entry").bytes.clone()
    }

    /// Drops `key`'s index entry (if any); the content entry goes with it
    /// when its last extent mapping disappears. Returns true if an index
    /// entry was removed.
    fn detach(&mut self, key: ExtentKey) -> bool {
        let Some((_, idx)) = self.index.remove(&key) else {
            return false;
        };
        let entry = self.slab[idx as usize].as_mut().expect("live entry");
        let pos = entry
            .keys
            .iter()
            .position(|k| *k == key)
            .expect("index entry has a back-reference");
        entry.keys.swap_remove(pos);
        if entry.keys.is_empty() {
            self.drop_content(idx);
        }
        true
    }

    /// Frees content entry `idx` (which must have no extent mappings
    /// left): unlinks it, drops its hash-bucket slot, releases the bytes
    /// accounting and recycles the slab slot. Guest memories still
    /// aliasing the buffer keep it alive through their own `Arc` clones.
    fn drop_content(&mut self, idx: u32) {
        self.unlink(idx);
        let entry = self.slab[idx as usize].take().expect("live entry");
        debug_assert!(entry.keys.is_empty(), "content freed while mapped");
        let bucket_key = (entry.hash, entry.bytes.len() as u64);
        let bucket = self.by_hash.get_mut(&bucket_key).expect("hash bucket");
        bucket.retain(|&i| i != idx);
        if bucket.is_empty() {
            self.by_hash.remove(&bucket_key);
        }
        self.bytes -= entry.bytes.len() as u64;
        self.free.push(idx);
    }

    /// Maps `key` (valid at `generation`) onto `bytes`, deduplicating
    /// against identical live content, then enforces the budget. Returns
    /// the canonical buffer (the already-cached one on a dedup).
    fn attach(&mut self, key: ExtentKey, generation: u64, bytes: FrameBytes, hash: u64) -> FrameBytes {
        // A stale mapping for this extent (old generation) dies first.
        self.detach(key);
        let bucket_key = (hash, bytes.len() as u64);
        let existing = self.by_hash.get(&bucket_key).and_then(|bucket| {
            bucket.iter().copied().find(|&i| {
                self.slab[i as usize].as_ref().expect("live entry").bytes[..] == bytes[..]
            })
        });
        let idx = match existing {
            Some(idx) => {
                self.deduped += 1;
                self.touch(idx);
                idx
            }
            None => {
                let entry = ContentEntry {
                    hash,
                    bytes,
                    keys: Vec::new(),
                    prev: NIL,
                    next: NIL,
                };
                let idx = match self.free.pop() {
                    Some(i) => {
                        self.slab[i as usize] = Some(entry);
                        i
                    }
                    None => {
                        self.slab.push(Some(entry));
                        (self.slab.len() - 1) as u32
                    }
                };
                self.by_hash.entry(bucket_key).or_default().push(idx);
                self.bytes += self.bytes_of(idx).len() as u64;
                self.link_front(idx);
                self.admitted += 1;
                idx
            }
        };
        self.slab[idx as usize].as_mut().expect("live entry").keys.push(key);
        self.index.insert(key, (generation, idx));
        let out = self.bytes_of(idx);
        self.evict_to_budget();
        out
    }

    /// Evicts LRU content entries (and all of their extent mappings)
    /// until the deduped bytes fit the budget. The entry just returned
    /// to a caller may evict itself — the caller holds its own `Arc`, so
    /// that is a pass-through serve, not a correctness hazard.
    fn evict_to_budget(&mut self) {
        while self.bytes > self.budget {
            let victim = self.tail;
            if victim == NIL {
                break;
            }
            let keys = std::mem::take(
                &mut self.slab[victim as usize].as_mut().expect("live tail").keys,
            );
            for k in keys {
                self.index.remove(&k);
            }
            self.drop_content(victim);
            self.evicted += 1;
        }
    }
}

/// A content-addressed, generation-validated, capacity-budgeted cache of
/// snapshot-file extents, shared by every monitor (and every cluster
/// shard) that serves cold starts from one logical snapshot store. See
/// the module docs for the design; thread-safe, cheap to share behind an
/// `Arc`.
#[derive(Debug)]
pub struct SnapshotFrameCache {
    inner: Mutex<Inner>,
}

impl Default for SnapshotFrameCache {
    fn default() -> Self {
        SnapshotFrameCache {
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                slab: Vec::new(),
                by_hash: HashMap::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                bytes: 0,
                budget: u64::MAX,
                hits: 0,
                misses: 0,
                raced: 0,
                invalidated: 0,
                admitted: 0,
                deduped: 0,
                evicted: 0,
            }),
        }
    }
}

impl SnapshotFrameCache {
    /// Creates an empty, unbounded cache (cap it with
    /// [`set_budget`](Self::set_budget)).
    pub fn new() -> Self {
        SnapshotFrameCache::default()
    }

    /// Caps the deduplicated content bytes the cache may hold; `None`
    /// restores the unbounded default. Shrinking below the current
    /// occupancy evicts LRU content entries immediately.
    pub fn set_budget(&self, budget_bytes: Option<u64>) {
        let mut inner = self.inner.lock();
        inner.budget = budget_bytes.unwrap_or(u64::MAX);
        inner.evict_to_budget();
    }

    /// The current budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        let budget = self.inner.lock().budget;
        (budget != u64::MAX).then_some(budget)
    }

    /// Returns the extent `[offset, offset + len)` of `file`, serving it
    /// from the cache when a live entry exists and its recorded content
    /// generation still matches the store's. On a miss the bytes are read
    /// from `fs` once (zero-filled past EOF, like
    /// [`FileStore::read_at`]); identical bytes already cached under any
    /// other extent are shared instead of duplicated.
    ///
    /// The returned buffer is refcounted and immutable: callers alias it
    /// into guest memory (`Uffd::alias_run`) instead of copying.
    ///
    /// # Errors
    ///
    /// [`FrameCacheGone`] if `file` is dead (deleted — e.g. an
    /// unregister racing this cold start), including mid-load: the
    /// caller falls back to a plain store read or fails its serve
    /// cleanly. The cache itself never panics on a dead file.
    pub fn get_or_load(
        &self,
        fs: &FileStore,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<FrameBytes, FrameCacheGone> {
        let mut scratch = FrameCacheDelta::default();
        self.get_or_load_tracked(fs, file, offset, len, &mut scratch)
    }

    /// [`get_or_load`](SnapshotFrameCache::get_or_load) that additionally
    /// attributes the lookup's resolution (hit / populating miss / raced)
    /// to the caller's [`FrameCacheDelta`], so per-invocation telemetry
    /// spans report real counts even when the cache is shared by
    /// concurrent requests. The global counters are updated identically
    /// either way.
    pub fn get_or_load_tracked(
        &self,
        fs: &FileStore,
        file: FileId,
        offset: u64,
        len: u64,
        delta: &mut FrameCacheDelta,
    ) -> Result<FrameBytes, FrameCacheGone> {
        let key = (file, offset, len);
        let generation = fs.generation(file).ok_or(FrameCacheGone(file))?;
        {
            let mut inner = self.inner.lock();
            if let Some(&(cached_gen, idx)) = inner.index.get(&key) {
                if cached_gen == generation {
                    inner.touch(idx);
                    inner.hits += 1;
                    delta.hits += 1;
                    return Ok(inner.bytes_of(idx));
                }
            }
        }
        // Miss (or stale generation): read and hash outside the cache
        // lock, then re-validate before publishing.
        let raw = fs
            .try_read_at(file, offset, len as usize)
            .ok_or(FrameCacheGone(file))?;
        let hash = sim_core::hash::fnv1a64(&raw);
        let bytes: FrameBytes = std::sync::Arc::new(raw);
        if fs.generation(file) != Some(generation) {
            // A rewrite landed between the generation check and the read:
            // publishing would pin possibly-new bytes under the old
            // generation. Serve what we read, cache nothing; the next
            // lookup reloads under the new generation.
            self.inner.lock().raced += 1;
            delta.raced += 1;
            return Ok(bytes);
        }
        let mut inner = self.inner.lock();
        if let Some(&(cached_gen, idx)) = inner.index.get(&key) {
            if cached_gen == generation {
                // A concurrent identical load won the publish; coalesce
                // onto its entry so both lanes serve one allocation.
                inner.touch(idx);
                inner.raced += 1;
                delta.raced += 1;
                return Ok(inner.bytes_of(idx));
            }
        }
        inner.misses += 1;
        delta.misses += 1;
        Ok(inner.attach(key, generation, bytes, hash))
    }

    /// Looks up an extent without loading on miss (tests/introspection);
    /// recency and counters are untouched.
    pub fn peek(&self, file: FileId, offset: u64, len: u64) -> Option<FrameBytes> {
        let inner = self.inner.lock();
        inner
            .index
            .get(&(file, offset, len))
            .map(|&(_, idx)| inner.bytes_of(idx))
    }

    /// True if a lookup of this extent would hit: a live entry exists
    /// *and* its recorded generation matches the store's current one.
    /// Lets callers choose between the zero-copy hit path and a
    /// copy-parallelizing cold path without perturbing the counters.
    pub fn contains_current(&self, fs: &FileStore, file: FileId, offset: u64, len: u64) -> bool {
        let Some(generation) = fs.generation(file) else {
            return false;
        };
        self.inner
            .lock()
            .index
            .get(&(file, offset, len))
            .is_some_and(|&(g, _)| g == generation)
    }

    /// Drops every cached extent of `file` (re-record, padding and
    /// snapshot re-generation rewrite artifacts in place; generation
    /// validation already makes the old bytes unservable — this releases
    /// their memory too). Content shared with other files' extents stays
    /// as long as those mappings live. Returns the number of index
    /// entries dropped.
    pub fn invalidate_file(&self, file: FileId) -> u64 {
        let mut inner = self.inner.lock();
        let keys: Vec<ExtentKey> = inner
            .index
            .keys()
            .filter(|&&(f, _, _)| f == file)
            .copied()
            .collect();
        for &k in &keys {
            inner.detach(k);
        }
        inner.invalidated += keys.len() as u64;
        keys.len() as u64
    }

    /// Drops everything — the frame-cache analogue of
    /// `echo 3 > /proc/sys/vm/drop_caches` (the paper's flush-before-
    /// measure methodology, §4.1). All structural state (index, content
    /// slab, hash buckets, LRU links) is reset; counters and the budget
    /// survive.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.invalidated += inner.index.len() as u64;
        inner.index.clear();
        inner.slab.clear();
        inner.by_hash.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.bytes = 0;
    }

    /// Current counters.
    pub fn stats(&self) -> FrameCacheStats {
        let inner = self.inner.lock();
        FrameCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            raced: inner.raced,
            invalidated: inner.invalidated,
            admitted: inner.admitted,
            deduped: inner.deduped,
            evicted: inner.evicted,
            entries: inner.index.len() as u64,
            content_entries: inner.slab.iter().filter(|e| e.is_some()).count() as u64,
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_serves_the_same_buffer() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/mem");
        fs.write_at(f, 0, b"0123456789");
        let reads_before = fs.read_calls();
        let a = cache.get_or_load(&fs, f, 2, 4).unwrap();
        assert_eq!(&a[..], b"2345");
        assert_eq!(fs.read_calls() - reads_before, 1);
        let b = cache.get_or_load(&fs, f, 2, 4).unwrap();
        assert!(FrameBytes::ptr_eq(&a, &b), "hit returns the same allocation");
        assert_eq!(fs.read_calls() - reads_before, 1, "hit reads nothing");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.bytes), (1, 1, 1, 4));
        assert_eq!((st.admitted, st.deduped, st.content_entries), (1, 0, 1));
    }

    #[test]
    fn tracked_lookups_attribute_per_request() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/mem");
        fs.write_at(f, 0, b"0123456789");
        // Request A populates, request B is served zero-copy; each sees
        // only its own resolution while the global stats see both.
        let mut a = FrameCacheDelta::default();
        let mut b = FrameCacheDelta::default();
        cache.get_or_load_tracked(&fs, f, 0, 8, &mut a).unwrap();
        cache.get_or_load_tracked(&fs, f, 0, 8, &mut b).unwrap();
        assert_eq!(a, FrameCacheDelta { hits: 0, misses: 1, raced: 0 });
        assert_eq!(b, FrameCacheDelta { hits: 1, misses: 0, raced: 0 });
        assert_eq!(a.total(), 1);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.raced), (1, 1, 0));
        // Deltas add up.
        let sum = a + b;
        assert_eq!(sum, FrameCacheDelta { hits: 1, misses: 1, raced: 0 });
    }

    #[test]
    fn rewritten_file_is_never_served_stale() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/ws");
        fs.write_at(f, 0, b"old bytes!");
        let stale = cache.get_or_load(&fs, f, 0, 9).unwrap();
        assert_eq!(&stale[..], b"old bytes");
        // Rewrite in place (what re-record / pad_working_set do).
        fs.write_at(f, 0, b"new bytes!");
        let fresh = cache.get_or_load(&fs, f, 0, 9).unwrap();
        assert_eq!(&fresh[..], b"new bytes", "generation mismatch reloads");
        assert!(!FrameBytes::ptr_eq(&stale, &fresh));
        assert_eq!(cache.stats().misses, 2);
        // The stale mapping is gone with its content (no other extent
        // shares those bytes).
        assert_eq!(cache.stats().content_entries, 1);
        assert_eq!(cache.stats().bytes, 9);
        // Truncating re-create is a rewrite too.
        fs.create("snap/ws");
        let empty = cache.get_or_load(&fs, f, 0, 9).unwrap();
        assert!(empty.iter().all(|&b| b == 0), "truncated file reads zeros");
    }

    #[test]
    fn identical_extents_across_files_share_one_content_entry() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        // N functions cloned from one runtime image: same bytes, distinct
        // snapshot files.
        let image = b"shared runtime image page bytes!";
        let files: Vec<_> = (0..4)
            .map(|i| {
                let f = fs.create(&format!("snap/fn{i}"));
                fs.write_at(f, 0, image);
                f
            })
            .collect();
        let bufs: Vec<FrameBytes> = files
            .iter()
            .map(|&f| cache.get_or_load(&fs, f, 0, image.len() as u64).unwrap())
            .collect();
        for b in &bufs[1..] {
            assert!(
                FrameBytes::ptr_eq(&bufs[0], b),
                "identical content is one allocation fleet-wide"
            );
        }
        let st = cache.stats();
        assert_eq!(st.entries, 4, "one index entry per extent");
        assert_eq!(st.content_entries, 1, "one content entry for shared bytes");
        assert_eq!(st.bytes, image.len() as u64, "deduped content counted once");
        assert_eq!((st.admitted, st.deduped, st.misses), (1, 3, 4));
        // Dropping one mapping keeps the shared content alive…
        assert_eq!(cache.invalidate_file(files[0]), 1);
        let st = cache.stats();
        assert_eq!((st.entries, st.content_entries, st.bytes), (3, 1, 32));
        // …and dropping the rest releases it.
        for &f in &files[1..] {
            cache.invalidate_file(f);
        }
        let st = cache.stats();
        assert_eq!((st.entries, st.content_entries, st.bytes), (0, 0, 0));
    }

    #[test]
    fn budget_evicts_lru_content_and_bounds_bytes() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        // Four 16-byte extents with distinct contents.
        for i in 0..4u8 {
            fs.write_at(f, i as u64 * 16, &[i + 1; 16]);
        }
        cache.set_budget(Some(32));
        let a = cache.get_or_load(&fs, f, 0, 16).unwrap();
        cache.get_or_load(&fs, f, 16, 16).unwrap();
        // Touch extent 0 so extent 1 is the LRU victim.
        cache.get_or_load(&fs, f, 0, 16).unwrap();
        cache.get_or_load(&fs, f, 32, 16).unwrap();
        let st = cache.stats();
        assert_eq!(st.evicted, 1, "third admit evicts the LRU entry");
        assert!(st.bytes <= 32, "budget bounds deduped bytes");
        assert!(cache.peek(f, 0, 16).is_some(), "touched entry survives");
        assert!(cache.peek(f, 16, 16).is_none(), "LRU entry evicted");
        // The evicted extent reloads as a fresh miss; the caller's old
        // buffer was never freed or mutated (it holds its own Arc).
        assert_eq!(&a[..], &[1u8; 16]);
        let st_before = cache.stats();
        cache.get_or_load(&fs, f, 16, 16).unwrap();
        assert_eq!(cache.stats().misses, st_before.misses + 1);
        // Lifting the budget stops eviction.
        cache.set_budget(None);
        cache.get_or_load(&fs, f, 48, 16).unwrap();
        assert_eq!(cache.stats().evicted, 2, "unbounded again: no new evictions");
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, &[8u8; 32]);
        fs.write_at(f, 32, &[9u8; 32]);
        cache.get_or_load(&fs, f, 0, 32).unwrap();
        cache.get_or_load(&fs, f, 32, 32).unwrap();
        assert_eq!(cache.stats().bytes, 64);
        cache.set_budget(Some(40));
        let st = cache.stats();
        assert!(st.bytes <= 40);
        assert_eq!(st.evicted, 1);
        assert_eq!(cache.budget(), Some(40));
    }

    #[test]
    fn eviction_never_frees_or_mutates_aliased_guest_frames() {
        use guest_mem::{GuestMemory, PageRun, PAGE_SIZE};
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/mem");
        let mut page = vec![0u8; 2 * PAGE_SIZE];
        guest_mem::checksum::fill_deterministic(&mut page, 0xA11A5, 0);
        fs.write_at(f, 0, &page);
        let src = cache
            .get_or_load(&fs, f, 0, 2 * PAGE_SIZE as u64)
            .unwrap();
        // A live guest memory aliases the cached extent.
        let mut mem = GuestMemory::new(16 * PAGE_SIZE as u64);
        mem.alias_run(PageRun::new(guest_mem::PageIdx::new(0), 2), &src, 0)
            .unwrap();
        let refs_before = FrameBytes::strong_count(&src);
        // Evict it (budget 0 keeps nothing).
        cache.set_budget(Some(0));
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(cache.stats().bytes, 0);
        assert!(cache.peek(f, 0, 2 * PAGE_SIZE as u64).is_none());
        // Only the cache's reference dropped; the guest's aliases and the
        // bytes behind them are untouched.
        assert_eq!(FrameBytes::strong_count(&src), refs_before - 1);
        for p in 0..2u64 {
            assert_eq!(
                mem.page_bytes(guest_mem::PageIdx::new(p)).unwrap(),
                &page[p as usize * PAGE_SIZE..(p as usize + 1) * PAGE_SIZE],
                "aliased frame survives eviction byte-for-byte"
            );
        }
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let a = fs.create("a");
        let b = fs.create("b");
        fs.write_at(a, 0, b"aaaa");
        fs.write_at(b, 0, b"bbbb");
        cache.get_or_load(&fs, a, 0, 2).unwrap();
        cache.get_or_load(&fs, a, 2, 2).unwrap();
        cache.get_or_load(&fs, b, 0, 4).unwrap();
        assert_eq!(cache.invalidate_file(a), 2);
        let st = cache.stats();
        assert_eq!((st.entries, st.invalidated), (1, 2));
        assert!(cache.peek(b, 0, 4).is_some());
        assert!(cache.peek(a, 0, 2).is_none());
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidated, 3);
    }

    #[test]
    fn distinct_extents_are_distinct_entries() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, &[7u8; 64]);
        let whole = cache.get_or_load(&fs, f, 0, 64).unwrap();
        let head = cache.get_or_load(&fs, f, 0, 32).unwrap();
        assert!(!FrameBytes::ptr_eq(&whole, &head));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().content_entries, 2, "different lengths never dedup");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn contains_current_tracks_liveness_and_generation() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, b"abcd");
        assert!(!cache.contains_current(&fs, f, 0, 4), "nothing cached yet");
        let misses_before = cache.stats().misses;
        cache.get_or_load(&fs, f, 0, 4).unwrap();
        assert!(cache.contains_current(&fs, f, 0, 4));
        // The probe itself never perturbs hit/miss counters.
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert_eq!(cache.stats().hits, 0);
        // A rewrite makes the entry non-current; a dead file too.
        fs.write_at(f, 0, b"ABCD");
        assert!(!cache.contains_current(&fs, f, 0, 4));
        fs.delete(f);
        assert!(!cache.contains_current(&fs, f, 0, 4));
    }

    #[test]
    fn past_eof_reads_cache_zeros() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, b"xy");
        let got = cache.get_or_load(&fs, f, 1, 4).unwrap();
        assert_eq!(&got[..], &[b'y', 0, 0, 0]);
    }

    #[test]
    fn load_from_dead_file_errs_instead_of_panicking() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, b"abcd");
        cache.get_or_load(&fs, f, 0, 4).unwrap();
        fs.delete(f);
        // An unregister racing a cold start degrades to a clean error the
        // caller can turn into a plain store read / serve failure.
        assert_eq!(cache.get_or_load(&fs, f, 0, 4), Err(FrameCacheGone(f)));
        let st = cache.stats();
        assert_eq!(st.misses, 1, "failed load is not a populating miss");
    }

    #[test]
    fn concurrent_identical_loads_coalesce_and_count_once() {
        use std::sync::Arc;
        let fs = Arc::new(FileStore::new());
        let cache = Arc::new(SnapshotFrameCache::new());
        let f = fs.create("f");
        fs.write_at(f, 0, &[42u8; 4096]);
        const THREADS: u64 = 8;
        const ITERS: u64 = 50;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let (fs, cache) = (fs.clone(), cache.clone());
                s.spawn(move || {
                    for _ in 0..ITERS {
                        let b = cache.get_or_load(&fs, f, 0, 4096).unwrap();
                        assert_eq!(b[0], 42);
                    }
                });
            }
        });
        let st = cache.stats();
        // Every lookup is accounted exactly once; duplicate loads that
        // lost the publish race are `raced`, not extra misses.
        assert_eq!(st.hits + st.misses + st.raced, THREADS * ITERS);
        assert_eq!(st.misses, 1, "one extent, one populating miss");
        assert_eq!((st.entries, st.content_entries, st.bytes), (1, 1, 4096));
    }
}
