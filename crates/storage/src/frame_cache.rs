//! The shared snapshot frame cache behind zero-copy cold starts.
//!
//! The paper's core observation is that cold starts repeatedly pay for
//! the *same* guest-memory pages; "How Low Can You Go?" (Tan et al.)
//! shows page-cache residency and cross-start reuse set the practical
//! cold-start floor. This module is that reuse layer for the *functional*
//! pipeline: a content store keyed by `(file, extent)` holding each
//! snapshot/WS extent's bytes exactly once, as refcounted
//! [`guest_mem::FrameBytes`] buffers that many guest-memory
//! instances alias simultaneously (copy-on-write; see
//! `guest_mem::GuestMemory::alias_run`).
//!
//! * The **first** cold start of a function misses: the extent is read
//!   from the [`FileStore`] once and populated.
//! * **Every subsequent** cold start of the same function — from any
//!   invocation lane of any cluster shard — hits: the install is a
//!   refcount bump, zero byte copies, no store read.
//!
//! ## Staleness is structurally impossible
//!
//! Every entry records the backing file's content
//! [`generation`](FileStore::generation) at load time and re-validates it
//! on each lookup: a rewritten file (re-record, `pad_working_set`,
//! snapshot re-generation, diff-snapshot merge — anything that mutates
//! bytes) makes all of its cached extents misses automatically, so a
//! stale byte can never be served even if a caller forgets to
//! invalidate. Explicit [`invalidate_file`](SnapshotFrameCache::invalidate_file)
//! / [`clear`](SnapshotFrameCache::clear) calls exist to release the
//! memory eagerly (the orchestrator issues them on re-record,
//! `pad_working_set` and `drop_caches`).
//!
//! One cache is shared across all shards of a cluster: per-shard
//! [`FileStore`] namespacing already guarantees `(FileId, extent)` keys
//! from different shards never collide.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use guest_mem::FrameBytes;
use parking_lot::RwLock;

use crate::file_store::{FileId, FileStore};

/// Counters for the cache's effectiveness (asserted by the perf
/// regression harness: repeat cold starts must be served by aliasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCacheStats {
    /// Lookups served from a live cached extent (zero-copy).
    pub hits: u64,
    /// Lookups that read the backing store and populated an entry
    /// (includes generation-mismatch reloads).
    pub misses: u64,
    /// Entries dropped by explicit invalidation (`invalidate_file`,
    /// `clear`).
    pub invalidated: u64,
    /// Live entries.
    pub entries: u64,
    /// Bytes held by live entries (cache copies only — aliased guest
    /// frames share these same allocations).
    pub bytes: u64,
}

/// An extent's identity: `(file, byte offset, byte len)`.
type ExtentKey = (FileId, u64, u64);

/// A cached extent: the content generation it was loaded at + the bytes.
type Entry = (u64, FrameBytes);

/// A content-keyed, generation-validated cache of snapshot-file extents,
/// shared by every monitor (and every cluster shard) that serves cold
/// starts from one logical snapshot store. See the module docs for the
/// design; thread-safe, cheap to share behind an `Arc`.
#[derive(Debug, Default)]
pub struct SnapshotFrameCache {
    entries: RwLock<HashMap<ExtentKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl SnapshotFrameCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SnapshotFrameCache::default()
    }

    /// Returns the extent `[offset, offset + len)` of `file`, serving it
    /// from the cache when a live entry exists and its recorded content
    /// generation still matches the store's. On a miss the bytes are read
    /// from `fs` once (zero-filled past EOF, like
    /// [`FileStore::read_at`]) and cached for every later cold start.
    ///
    /// The returned buffer is refcounted and immutable: callers alias it
    /// into guest memory (`Uffd::alias_run`) instead of copying.
    ///
    /// # Panics
    ///
    /// Panics if `file` does not refer to a live file.
    pub fn get_or_load(&self, fs: &FileStore, file: FileId, offset: u64, len: u64) -> FrameBytes {
        let generation = fs
            .generation(file)
            .unwrap_or_else(|| panic!("frame-cache load from dead {file}"));
        let key = (file, offset, len);
        if let Some((cached_gen, bytes)) = self.entries.read().get(&key) {
            if *cached_gen == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return bytes.clone();
            }
        }
        // Miss (or stale generation): read outside any cache lock, then
        // publish. A racing lane may load the same extent concurrently;
        // last write wins and both serve identical bytes.
        let bytes: FrameBytes = std::sync::Arc::new(fs.read_at(file, offset, len as usize));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .write()
            .insert(key, (generation, bytes.clone()));
        bytes
    }

    /// Looks up an extent without loading on miss (tests/introspection).
    pub fn peek(&self, file: FileId, offset: u64, len: u64) -> Option<FrameBytes> {
        self.entries
            .read()
            .get(&(file, offset, len))
            .map(|(_, b)| b.clone())
    }

    /// True if a lookup of this extent would hit: a live entry exists
    /// *and* its recorded generation matches the store's current one.
    /// Lets callers choose between the zero-copy hit path and a
    /// copy-parallelizing cold path without perturbing the counters.
    pub fn contains_current(&self, fs: &FileStore, file: FileId, offset: u64, len: u64) -> bool {
        let Some(generation) = fs.generation(file) else {
            return false;
        };
        self.entries
            .read()
            .get(&(file, offset, len))
            .is_some_and(|(g, _)| *g == generation)
    }

    /// Drops every cached extent of `file` (re-record, padding and
    /// snapshot re-generation rewrite artifacts in place; generation
    /// validation already makes the old bytes unservable — this releases
    /// their memory too). Returns the number of entries dropped.
    pub fn invalidate_file(&self, file: FileId) -> u64 {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|&(f, _, _), _| f != file);
        let dropped = (before - entries.len()) as u64;
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Drops everything — the frame-cache analogue of
    /// `echo 3 > /proc/sys/vm/drop_caches` (the paper's flush-before-
    /// measure methodology, §4.1).
    pub fn clear(&self) {
        let mut entries = self.entries.write();
        self.invalidated
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        entries.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> FrameCacheStats {
        let entries = self.entries.read();
        FrameCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: entries.len() as u64,
            bytes: entries.values().map(|(_, b)| b.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_serves_the_same_buffer() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/mem");
        fs.write_at(f, 0, b"0123456789");
        let reads_before = fs.read_calls();
        let a = cache.get_or_load(&fs, f, 2, 4);
        assert_eq!(&a[..], b"2345");
        assert_eq!(fs.read_calls() - reads_before, 1);
        let b = cache.get_or_load(&fs, f, 2, 4);
        assert!(FrameBytes::ptr_eq(&a, &b), "hit returns the same allocation");
        assert_eq!(fs.read_calls() - reads_before, 1, "hit reads nothing");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.bytes), (1, 1, 1, 4));
    }

    #[test]
    fn rewritten_file_is_never_served_stale() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("snap/ws");
        fs.write_at(f, 0, b"old bytes!");
        let stale = cache.get_or_load(&fs, f, 0, 9);
        assert_eq!(&stale[..], b"old bytes");
        // Rewrite in place (what re-record / pad_working_set do).
        fs.write_at(f, 0, b"new bytes!");
        let fresh = cache.get_or_load(&fs, f, 0, 9);
        assert_eq!(&fresh[..], b"new bytes", "generation mismatch reloads");
        assert!(!FrameBytes::ptr_eq(&stale, &fresh));
        assert_eq!(cache.stats().misses, 2);
        // Truncating re-create is a rewrite too.
        fs.create("snap/ws");
        let empty = cache.get_or_load(&fs, f, 0, 9);
        assert!(empty.iter().all(|&b| b == 0), "truncated file reads zeros");
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let a = fs.create("a");
        let b = fs.create("b");
        fs.write_at(a, 0, b"aaaa");
        fs.write_at(b, 0, b"bbbb");
        cache.get_or_load(&fs, a, 0, 2);
        cache.get_or_load(&fs, a, 2, 2);
        cache.get_or_load(&fs, b, 0, 4);
        assert_eq!(cache.invalidate_file(a), 2);
        let st = cache.stats();
        assert_eq!((st.entries, st.invalidated), (1, 2));
        assert!(cache.peek(b, 0, 4).is_some());
        assert!(cache.peek(a, 0, 2).is_none());
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidated, 3);
    }

    #[test]
    fn distinct_extents_are_distinct_entries() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, &[7u8; 64]);
        let whole = cache.get_or_load(&fs, f, 0, 64);
        let head = cache.get_or_load(&fs, f, 0, 32);
        assert!(!FrameBytes::ptr_eq(&whole, &head));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn contains_current_tracks_liveness_and_generation() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, b"abcd");
        assert!(!cache.contains_current(&fs, f, 0, 4), "nothing cached yet");
        let misses_before = cache.stats().misses;
        cache.get_or_load(&fs, f, 0, 4);
        assert!(cache.contains_current(&fs, f, 0, 4));
        // The probe itself never perturbs hit/miss counters.
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert_eq!(cache.stats().hits, 0);
        // A rewrite makes the entry non-current; a dead file too.
        fs.write_at(f, 0, b"ABCD");
        assert!(!cache.contains_current(&fs, f, 0, 4));
        fs.delete(f);
        assert!(!cache.contains_current(&fs, f, 0, 4));
    }

    #[test]
    fn past_eof_reads_cache_zeros() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.write_at(f, 0, b"xy");
        let got = cache.get_or_load(&fs, f, 1, 4);
        assert_eq!(&got[..], &[b'y', 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "dead")]
    fn load_from_dead_file_panics() {
        let fs = FileStore::new();
        let cache = SnapshotFrameCache::new();
        let f = fs.create("f");
        fs.delete(f);
        let _ = cache.get_or_load(&fs, f, 0, 4);
    }
}
