//! A `fio`-style microbenchmark rig (§5.2.3 of the paper).
//!
//! The paper calibrates its SSD with the standard Linux `fio` tool:
//! a single 4 KB read achieves 32 MB/s, sixteen concurrent 4 KB reads reach
//! 360 MB/s, and the peak (large sequential) is 850 MB/s. These routines
//! reproduce that experiment against a [`Disk`] and are used both by the
//! `fio` figure binary and by calibration tests.

use sim_core::{DetRng, SimTime, TokenPool};

use crate::disk::{Access, Disk};
use crate::file_store::{FileId, FileStore};
use crate::PAGE_SIZE;

/// Result of one fio-style run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioResult {
    /// Bytes delivered to the "application".
    pub bytes: u64,
    /// Virtual elapsed time in seconds.
    pub elapsed_secs: f64,
}

impl FioResult {
    /// Throughput in MB/s (decimal megabytes, as the paper quotes).
    pub fn mbps(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.elapsed_secs / 1e6
        }
    }
}

/// Creates a scratch file of `bytes` for I/O benchmarking.
pub fn make_test_file(fs: &FileStore, bytes: u64) -> FileId {
    let f = fs.create("fio/testfile");
    fs.set_len(f, bytes);
    f
}

/// Closed-loop random 4 KB `O_DIRECT` reads at the given queue depth.
///
/// Queue depth 1 reproduces the paper's 32 MB/s; depth 16 its 360 MB/s.
///
/// # Panics
///
/// Panics if `queue_depth == 0` or `requests == 0`.
pub fn random_4k_reads(disk: &mut Disk, file: FileId, file_bytes: u64, requests: u64, queue_depth: usize, seed: u64) -> FioResult {
    assert!(queue_depth > 0 && requests > 0);
    let mut rng = DetRng::new(seed);
    let pages = file_bytes / PAGE_SIZE;
    let mut pool = TokenPool::new(queue_depth);
    let t0 = SimTime::ZERO;
    let mut last_done = t0;
    for _ in 0..requests {
        let start = pool.acquire(t0);
        let page = rng.gen_range(pages);
        let out = disk.read_direct(start, file, page * PAGE_SIZE, PAGE_SIZE, Access::Random);
        pool.release(out.ready);
        last_done = last_done.max(out.ready);
    }
    FioResult {
        bytes: requests * PAGE_SIZE,
        elapsed_secs: (last_done - t0).as_secs_f64(),
    }
}

/// One large sequential read, optionally `O_DIRECT`.
///
/// Buffered mode models the Fig 7 "WS file" design point (≈275 MB/s);
/// direct mode models REAP's fetch (device-bound, ≈850 MB/s raw).
pub fn large_sequential_read(disk: &mut Disk, file: FileId, bytes: u64, direct: bool) -> FioResult {
    let t0 = SimTime::ZERO;
    let ready = if direct {
        disk.read_direct(t0, file, 0, bytes, Access::Sequential).ready
    } else {
        disk.read_buffered(t0, file, 0, bytes).ready
    };
    FioResult {
        bytes,
        elapsed_secs: (ready - t0).as_secs_f64(),
    }
}

/// Sparse buffered 4 KB reads mimicking the baseline's lazy-paging pattern:
/// short contiguous runs (mean `run_mean` pages, per Fig 3) scattered
/// randomly. Reports *useful* throughput, i.e. what the faulting guest
/// observes; the readahead waste is visible in `Disk::stats`.
pub fn sparse_fault_pattern(disk: &mut Disk, file: FileId, file_bytes: u64, useful_pages: u64, run_mean: f64, seed: u64) -> FioResult {
    let mut rng = DetRng::new(seed);
    let pages = file_bytes / PAGE_SIZE;
    let mut now = SimTime::ZERO;
    let mut remaining = useful_pages;
    while remaining > 0 {
        let run = rng.run_length(run_mean, 16).min(remaining);
        let base = rng.gen_range(pages.saturating_sub(run).max(1));
        for i in 0..run {
            let out = disk.fault_read_page(now, file, base + i, pages);
            now = out.ready;
        }
        remaining -= run;
    }
    FioResult {
        bytes: useful_pages * PAGE_SIZE,
        elapsed_secs: now.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Disk, FileId, u64) {
        let fs = FileStore::new();
        let bytes = 256 * 1024 * 1024u64;
        let f = make_test_file(&fs, bytes);
        (Disk::ssd(), f, bytes)
    }

    #[test]
    fn qd1_matches_paper_32_mbps() {
        let (mut d, f, len) = rig();
        let r = random_4k_reads(&mut d, f, len, 2000, 1, 1);
        let mbps = r.mbps();
        assert!(
            (28.0..36.0).contains(&mbps),
            "QD1 should be ~32 MB/s, got {mbps:.1}"
        );
    }

    #[test]
    fn qd16_matches_paper_360_mbps() {
        let (mut d, f, len) = rig();
        let r = random_4k_reads(&mut d, f, len, 8000, 16, 2);
        let mbps = r.mbps();
        assert!(
            (320.0..400.0).contains(&mbps),
            "QD16 should be ~360 MB/s, got {mbps:.1}"
        );
    }

    #[test]
    fn throughput_monotone_in_queue_depth() {
        let (_, f, len) = rig();
        let mut prev = 0.0;
        for qd in [1usize, 2, 4, 8, 16] {
            // Fresh disk per run: each run restarts the virtual clock.
            let mut d = Disk::ssd();
            let r = random_4k_reads(&mut d, f, len, 4000, qd, 3);
            assert!(
                r.mbps() >= prev * 0.98,
                "throughput should not collapse as QD grows: qd={qd} {:.1} < {prev:.1}",
                r.mbps()
            );
            prev = r.mbps();
        }
    }

    #[test]
    fn large_direct_read_near_peak() {
        let (mut d, f, _) = rig();
        let r = large_sequential_read(&mut d, f, 64 * 1024 * 1024, true);
        assert!(
            (800.0..860.0).contains(&r.mbps()),
            "direct read near 850 MB/s, got {:.0}",
            r.mbps()
        );
    }

    #[test]
    fn large_buffered_read_near_275_mbps() {
        let (mut d, f, _) = rig();
        let r = large_sequential_read(&mut d, f, 64 * 1024 * 1024, false);
        assert!(
            (230.0..320.0).contains(&r.mbps()),
            "buffered read near 275 MB/s, got {:.0}",
            r.mbps()
        );
    }

    #[test]
    fn sparse_faults_land_near_baseline_useful_bandwidth() {
        let (mut d, f, len) = rig();
        // 2048 useful pages (a helloworld-sized working set), runs of ~2.5.
        let r = sparse_fault_pattern(&mut d, f, len, 2048, 2.5, 4);
        let mbps = r.mbps();
        // The paper infers ~43 MB/s for vanilla snapshot loading (§6.2);
        // without the uffd software overhead (charged in vhive-core) the
        // raw path lands somewhat higher.
        assert!(
            (40.0..110.0).contains(&mbps),
            "sparse faults should see far below QD16 bandwidth, got {mbps:.1}"
        );
        // And the device moved far more than the useful bytes.
        let st = d.stats();
        assert!(st.device_bytes_read > 4 * st.useful_bytes_read);
    }

    #[test]
    fn fio_result_zero_elapsed() {
        let r = FioResult {
            bytes: 100,
            elapsed_secs: 0.0,
        };
        assert_eq!(r.mbps(), 0.0);
    }

    #[test]
    fn hdd_sequential_far_faster_than_random() {
        let fs = FileStore::new();
        let f = make_test_file(&fs, 64 * 1024 * 1024);
        let mut d = Disk::hdd();
        let seq = large_sequential_read(&mut d, f, 8 * 1024 * 1024, true);
        let mut d2 = Disk::hdd();
        let rnd = random_4k_reads(&mut d2, f, 64 * 1024 * 1024, 200, 1, 5);
        assert!(
            seq.mbps() > 40.0 * rnd.mbps(),
            "HDD sequential ({:.1} MB/s) should dwarf random ({:.2} MB/s)",
            seq.mbps(),
            rnd.mbps()
        );
    }
}
