#![warn(missing_docs)]
//! # sim-storage
//!
//! Storage substrate for the vHive/REAP reproduction: an in-memory file
//! store holding *real bytes* (snapshot guest-memory files, VMM state files,
//! REAP working-set and trace files) plus calibrated timing models for the
//! devices the paper evaluates.
//!
//! ## Device model
//!
//! The paper's SSD (§5.2.3) delivers:
//!
//! * 32 MB/s for a single outstanding 4 KB read (≈125 µs end-to-end),
//! * 360 MB/s with 16 outstanding 4 KB reads (internal parallelism),
//! * 850 MB/s peak for large sequential reads.
//!
//! We reproduce all three with a **tandem queue**: a per-request *latency
//! stage* with `k` parallel channels (amortizes the fixed cost under
//! concurrency) followed by a shared single-server *bus/flash stage* that
//! moves bytes at the device's peak bandwidth. A 4 KB read at queue depth 1
//! pays 120 µs + 4.8 µs ≈ 125 µs; sixteen concurrent 4 KB reads overlap in
//! the 11 channels (≈ 375 MB/s); an 8 MB `O_DIRECT` read is bus-bound at
//! ≈ 840 MB/s.
//!
//! ## Host page cache
//!
//! Buffered reads go through [`PageCache`] with Linux-style readahead: a
//! miss drags a readahead *cluster* (default 32 pages = 128 KB) across the
//! bus even though the faulting guest only needs ~2–3 contiguous pages
//! (Fig 3). This waste is exactly why the paper's baseline extracts only
//! ~43 MB/s of *useful* bandwidth at QD 1 and saturates near ~81 MB/s with
//! 64 concurrent instances (Fig 9), and why REAP's single `O_DIRECT`
//! working-set read wins.

pub mod device;
pub mod disk;
pub mod fault;
pub mod file_store;
pub mod fio;
pub mod frame_cache;
pub mod io_trace;
pub mod page_cache;

pub use device::{DeviceProfile, DiskKind};
pub use disk::{Access, Disk, DiskStats, ReadOutcome};
pub use fault::{
    FaultClass, FaultInjector, FaultKind, FaultPlan, FaultRule, FaultScope, InjectorStats,
    StorageError,
};
pub use file_store::{FileId, FileStore};
pub use frame_cache::{FrameCacheDelta, FrameCacheGone, FrameCacheStats, SnapshotFrameCache};
pub use io_trace::{IoKind, IoRecord, IoTrace};
pub use page_cache::PageCache;

/// Page size used throughout the reproduction (x86-64 base pages).
pub const PAGE_SIZE: u64 = 4096;

/// Rounds `bytes` up to whole pages.
pub fn pages_of(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_of_rounds_up() {
        assert_eq!(pages_of(0), 0);
        assert_eq!(pages_of(1), 1);
        assert_eq!(pages_of(4096), 1);
        assert_eq!(pages_of(4097), 2);
        assert_eq!(pages_of(8 * 1024 * 1024), 2048);
    }
}
