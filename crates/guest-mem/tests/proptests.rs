//! Property tests for guest memory + uffd invariants, including the
//! equivalence suite that pins the run-length-batched fault path to the
//! original per-page semantics.

use guest_mem::{
    fnv1a64, GuestAddr, GuestMemory, MemError, PageIdx, PageRun, TouchOutcome, Uffd, PAGE_SIZE,
};
use proptest::prelude::*;

/// Reference model of the pre-run-length `GuestMemory`: one boxed frame
/// per page, per-page installs only.
struct RefMemory {
    frames: Vec<Option<Box<[u8]>>>,
    dirty: std::collections::BTreeSet<u64>,
    tracking: bool,
}

impl RefMemory {
    fn new(pages: u64) -> Self {
        RefMemory {
            frames: (0..pages).map(|_| None).collect(),
            dirty: std::collections::BTreeSet::new(),
            tracking: false,
        }
    }

    fn install(&mut self, page: u64, data: &[u8]) -> Result<(), MemError> {
        if page >= self.frames.len() as u64 {
            return Err(MemError::OutOfBounds(PageIdx::new(page).base_addr()));
        }
        if self.frames[page as usize].is_some() {
            return Err(MemError::AlreadyResident(PageIdx::new(page)));
        }
        self.frames[page as usize] = Some(data.to_vec().into_boxed_slice());
        if self.tracking {
            self.dirty.insert(page);
        }
        Ok(())
    }

    /// Old-semantics bulk install: page-by-page, all-or-nothing checked
    /// up front (matches `GuestMemory::install_run`'s contract).
    fn install_run(&mut self, first: u64, data: &[u8]) -> Result<(), MemError> {
        let len = data.len() as u64 / PAGE_SIZE as u64;
        if first + len > self.frames.len() as u64 {
            return Err(MemError::OutOfBounds(PageIdx::new(first).base_addr()));
        }
        for p in first..first + len {
            if self.frames[p as usize].is_some() {
                return Err(MemError::AlreadyResident(PageIdx::new(p)));
            }
        }
        for (i, p) in (first..first + len).enumerate() {
            self.install(p, &data[i * PAGE_SIZE..(i + 1) * PAGE_SIZE])
                .expect("checked missing");
        }
        Ok(())
    }

    fn evict(&mut self, page: u64) -> bool {
        self.frames
            .get_mut(page as usize)
            .is_some_and(|f| f.take().is_some())
    }

    fn resident(&self) -> Vec<u64> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(i, _)| i as u64)
            .collect()
    }
}

fn page_content(label: u64, page: u64) -> Vec<u8> {
    let mut data = vec![0u8; PAGE_SIZE];
    guest_mem::checksum::fill_deterministic(&mut data, label, page);
    data
}

/// Clip a raw (start, len) pair into a touch window over `pages` pages.
fn window(pages: u64, start: u64, len: u64) -> PageRun {
    let first = start % pages;
    let len = len.clamp(1, pages - first);
    PageRun::new(PageIdx::new(first), len)
}

proptest! {
    /// Residency count always equals the number of distinct installed pages,
    /// and installed contents round-trip exactly.
    #[test]
    fn install_read_round_trip(pages in proptest::collection::btree_set(0u64..64, 1..32)) {
        let mut mem = GuestMemory::new(64 * PAGE_SIZE as u64);
        for &p in &pages {
            let mut data = vec![0u8; PAGE_SIZE];
            guest_mem::checksum::fill_deterministic(&mut data, 1, p);
            mem.install_page(PageIdx::new(p), &data).unwrap();
        }
        prop_assert_eq!(mem.resident_pages(), pages.len() as u64);
        for &p in &pages {
            let mut expect = vec![0u8; PAGE_SIZE];
            guest_mem::checksum::fill_deterministic(&mut expect, 1, p);
            prop_assert_eq!(mem.page_bytes(PageIdx::new(p)).unwrap(), &expect[..]);
            prop_assert_eq!(mem.page_checksum(PageIdx::new(p)).unwrap(), fnv1a64(&expect));
        }
    }

    /// Reads spanning arbitrary resident ranges return exactly what writes
    /// put there.
    #[test]
    fn write_read_any_span(
        offset in 0u64..(8 * PAGE_SIZE as u64 - 512),
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let mut mem = GuestMemory::new(8 * PAGE_SIZE as u64);
        for p in 0..8 {
            mem.install_zero_page(PageIdx::new(p)).unwrap();
        }
        mem.write(GuestAddr::new(offset), &data).unwrap();
        prop_assert_eq!(mem.read(GuestAddr::new(offset), data.len() as u64).unwrap(), data);
    }

    /// The uffd fault/copy protocol always converges: touching any page
    /// sequence, serving each fault with a copy, ends with all touched
    /// pages resident and fault count == distinct missing pages touched.
    #[test]
    fn uffd_protocol_converges(touches in proptest::collection::vec(0u64..128, 1..256)) {
        let mem = GuestMemory::new(128 * PAGE_SIZE as u64);
        let mut uffd = Uffd::register(mem, 0x7000_0000);
        let mut distinct = std::collections::BTreeSet::new();
        for &t in &touches {
            let page = PageIdx::new(t);
            match uffd.touch_page(page) {
                TouchOutcome::Resident => {
                    prop_assert!(distinct.contains(&t), "resident page never installed");
                }
                TouchOutcome::Faulted(ev) => {
                    prop_assert!(distinct.insert(t), "double fault on same page");
                    let p = uffd.page_of_fault(ev);
                    prop_assert_eq!(p, page);
                    uffd.copy(p, &[t as u8; PAGE_SIZE]).unwrap();
                    uffd.wake();
                }
            }
        }
        let st = uffd.stats();
        prop_assert_eq!(st.faults, distinct.len() as u64);
        prop_assert_eq!(st.copies, distinct.len() as u64);
        prop_assert_eq!(uffd.memory().resident_pages(), distinct.len() as u64);
    }

    /// Prefetch-then-touch: pages installed eagerly never fault afterwards,
    /// and EEXIST from racing installs never corrupts contents.
    #[test]
    fn prefetch_prevents_faults(
        prefetch in proptest::collection::btree_set(0u64..64, 1..64),
        touches in proptest::collection::vec(0u64..64, 1..128),
    ) {
        let mem = GuestMemory::new(64 * PAGE_SIZE as u64);
        let mut uffd = Uffd::register(mem, 0);
        for &p in &prefetch {
            uffd.copy(PageIdx::new(p), &[0xAA; PAGE_SIZE]).unwrap();
        }
        // Racing re-install: EEXIST, contents unchanged.
        for &p in prefetch.iter().take(3) {
            let err = uffd.copy(PageIdx::new(p), &[0xBB; PAGE_SIZE]);
            prop_assert_eq!(err, Err(MemError::AlreadyResident(PageIdx::new(p))));
        }
        let mut faulted = 0u64;
        for &t in &touches {
            match uffd.touch_page(PageIdx::new(t)) {
                TouchOutcome::Resident => {
                    if prefetch.contains(&t) {
                        prop_assert_eq!(uffd.memory().page_bytes(PageIdx::new(t)).unwrap()[0], 0xAA);
                    }
                }
                TouchOutcome::Faulted(ev) => {
                    prop_assert!(!prefetch.contains(&t), "prefetched page faulted");
                    faulted += 1;
                    let p = uffd.page_of_fault(ev);
                    uffd.copy(p, &[0xCC; PAGE_SIZE]).unwrap();
                }
            }
        }
        prop_assert!(faulted <= touches.len() as u64);
        prop_assert_eq!(uffd.stats().faults, faulted);
    }

    /// Equivalence: the bitmap/slab `GuestMemory` behaves exactly like the
    /// per-page boxed-frame model under arbitrary interleavings of
    /// single-page installs, bulk run installs and evictions — same
    /// success/error results, same resident set, same bytes.
    #[test]
    fn memory_matches_per_page_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..96, 1u64..9), 1..120)
    ) {
        const PAGES: u64 = 80;
        let mut mem = GuestMemory::new(PAGES * PAGE_SIZE as u64);
        let mut reference = RefMemory::new(PAGES);
        for (i, &(kind, raw_page, raw_len)) in ops.iter().enumerate() {
            match kind {
                0 => {
                    // Single-page install (may go out of bounds on purpose).
                    let page = raw_page;
                    let data = page_content(i as u64, page);
                    let got = mem.install_page(PageIdx::new(page), &data);
                    let want = reference.install(page, &data);
                    prop_assert_eq!(got, want, "install_page({})", page);
                }
                1 => {
                    // Bulk install; may overlap residents or leave bounds.
                    let first = raw_page % PAGES;
                    let len = raw_len; // may extend past the region
                    let mut data = Vec::with_capacity((len * PAGE_SIZE as u64) as usize);
                    for p in first..first + len {
                        data.extend_from_slice(&page_content(i as u64, p));
                    }
                    let got = mem.install_run(PageRun::new(PageIdx::new(first), len), &data);
                    let want = reference.install_run(first, &data);
                    prop_assert_eq!(got, want, "install_run({}, {})", first, len);
                }
                _ => {
                    let got = mem.evict_page(PageIdx::new(raw_page));
                    let want = reference.evict(raw_page);
                    prop_assert_eq!(got, want, "evict({})", raw_page);
                }
            }
        }
        let resident: Vec<u64> = mem.resident_iter().map(|p| p.as_u64()).collect();
        prop_assert_eq!(&resident, &reference.resident());
        prop_assert_eq!(mem.resident_pages(), resident.len() as u64);
        for &p in &resident {
            let want = reference.frames[p as usize].as_deref().unwrap();
            prop_assert_eq!(mem.page_bytes(PageIdx::new(p)).unwrap(), want, "page {}", p);
        }
        // The run view expands to the same resident set.
        let from_runs: Vec<u64> = mem
            .resident_runs()
            .iter()
            .flat_map(|r| r.iter())
            .map(|p| p.as_u64())
            .collect();
        prop_assert_eq!(&from_runs, &resident);
    }

    /// Equivalence: serving random touch-run sequences through the
    /// batched path (`next_missing_run`/`raise_run`/`copy_run_with`/
    /// `wake_run`) produces *identical* `UffdStats`, resident sets and
    /// page contents to the per-page protocol
    /// (`touch_page`/`poll`/`copy`/`wake`) the old replay used.
    #[test]
    fn run_path_matches_per_page_uffd(
        touches in proptest::collection::vec((0u64..128, 1u64..24), 1..60)
    ) {
        const PAGES: u64 = 128;
        const LABEL: u64 = 0x51AB;
        let region = 0x7f00_0000_0000u64;

        // Per-page reference protocol.
        let mut per_page = Uffd::register(GuestMemory::new(PAGES * PAGE_SIZE as u64), region);
        for &(start, len) in &touches {
            let w = window(PAGES, start, len);
            for page in w.iter() {
                if let TouchOutcome::Faulted(ev) = per_page.touch_page(page) {
                    let polled = per_page.poll().unwrap();
                    prop_assert_eq!(polled, ev);
                    let p = per_page.page_of_fault(ev);
                    per_page.copy(p, &page_content(LABEL, p.as_u64())).unwrap();
                    per_page.wake();
                }
            }
        }

        // Batched run protocol.
        let mut batched = Uffd::register(GuestMemory::new(PAGES * PAGE_SIZE as u64), region);
        for &(start, len) in &touches {
            let w = window(PAGES, start, len);
            let mut cursor = w.first;
            while let Some(missing) = batched.next_missing_run(cursor, w) {
                let ev = batched.raise_run(missing);
                let first = batched.page_of_fault(ev);
                prop_assert_eq!(first, missing.first);
                batched
                    .copy_run_with(missing, |buf| {
                        for (i, page) in missing.iter().enumerate() {
                            guest_mem::checksum::fill_deterministic(
                                &mut buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE],
                                LABEL,
                                page.as_u64(),
                            );
                        }
                    })
                    .unwrap();
                batched.wake_run(missing.len);
                cursor = missing.end();
            }
        }

        prop_assert_eq!(per_page.stats(), batched.stats(), "UffdStats must be identical");
        let ref_resident: Vec<u64> = per_page.memory().resident_iter().map(|p| p.as_u64()).collect();
        let run_resident: Vec<u64> = batched.memory().resident_iter().map(|p| p.as_u64()).collect();
        prop_assert_eq!(&ref_resident, &run_resident, "resident sets must be identical");
        for &p in &ref_resident {
            prop_assert_eq!(
                per_page.memory().page_checksum(PageIdx::new(p)),
                batched.memory().page_checksum(PageIdx::new(p)),
                "page {} contents must be identical", p
            );
        }
    }
}
