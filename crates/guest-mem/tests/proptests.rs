//! Property tests for guest memory + uffd invariants.

use guest_mem::{
    fnv1a64, GuestAddr, GuestMemory, MemError, PageIdx, TouchOutcome, Uffd, PAGE_SIZE,
};
use proptest::prelude::*;

proptest! {
    /// Residency count always equals the number of distinct installed pages,
    /// and installed contents round-trip exactly.
    #[test]
    fn install_read_round_trip(pages in proptest::collection::btree_set(0u64..64, 1..32)) {
        let mut mem = GuestMemory::new(64 * PAGE_SIZE as u64);
        for &p in &pages {
            let mut data = vec![0u8; PAGE_SIZE];
            guest_mem::checksum::fill_deterministic(&mut data, 1, p);
            mem.install_page(PageIdx::new(p), &data).unwrap();
        }
        prop_assert_eq!(mem.resident_pages(), pages.len() as u64);
        for &p in &pages {
            let mut expect = vec![0u8; PAGE_SIZE];
            guest_mem::checksum::fill_deterministic(&mut expect, 1, p);
            prop_assert_eq!(mem.page_bytes(PageIdx::new(p)).unwrap(), &expect[..]);
            prop_assert_eq!(mem.page_checksum(PageIdx::new(p)).unwrap(), fnv1a64(&expect));
        }
    }

    /// Reads spanning arbitrary resident ranges return exactly what writes
    /// put there.
    #[test]
    fn write_read_any_span(
        offset in 0u64..(8 * PAGE_SIZE as u64 - 512),
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let mut mem = GuestMemory::new(8 * PAGE_SIZE as u64);
        for p in 0..8 {
            mem.install_zero_page(PageIdx::new(p)).unwrap();
        }
        mem.write(GuestAddr::new(offset), &data).unwrap();
        prop_assert_eq!(mem.read(GuestAddr::new(offset), data.len() as u64).unwrap(), data);
    }

    /// The uffd fault/copy protocol always converges: touching any page
    /// sequence, serving each fault with a copy, ends with all touched
    /// pages resident and fault count == distinct missing pages touched.
    #[test]
    fn uffd_protocol_converges(touches in proptest::collection::vec(0u64..128, 1..256)) {
        let mem = GuestMemory::new(128 * PAGE_SIZE as u64);
        let mut uffd = Uffd::register(mem, 0x7000_0000);
        let mut distinct = std::collections::BTreeSet::new();
        for &t in &touches {
            let page = PageIdx::new(t);
            match uffd.touch_page(page) {
                TouchOutcome::Resident => {
                    prop_assert!(distinct.contains(&t), "resident page never installed");
                }
                TouchOutcome::Faulted(ev) => {
                    prop_assert!(distinct.insert(t), "double fault on same page");
                    let p = uffd.page_of_fault(ev);
                    prop_assert_eq!(p, page);
                    uffd.copy(p, &[t as u8; PAGE_SIZE]).unwrap();
                    uffd.wake();
                }
            }
        }
        let st = uffd.stats();
        prop_assert_eq!(st.faults, distinct.len() as u64);
        prop_assert_eq!(st.copies, distinct.len() as u64);
        prop_assert_eq!(uffd.memory().resident_pages(), distinct.len() as u64);
    }

    /// Prefetch-then-touch: pages installed eagerly never fault afterwards,
    /// and EEXIST from racing installs never corrupts contents.
    #[test]
    fn prefetch_prevents_faults(
        prefetch in proptest::collection::btree_set(0u64..64, 1..64),
        touches in proptest::collection::vec(0u64..64, 1..128),
    ) {
        let mem = GuestMemory::new(64 * PAGE_SIZE as u64);
        let mut uffd = Uffd::register(mem, 0);
        for &p in &prefetch {
            uffd.copy(PageIdx::new(p), &[0xAA; PAGE_SIZE]).unwrap();
        }
        // Racing re-install: EEXIST, contents unchanged.
        for &p in prefetch.iter().take(3) {
            let err = uffd.copy(PageIdx::new(p), &[0xBB; PAGE_SIZE]);
            prop_assert_eq!(err, Err(MemError::AlreadyResident(PageIdx::new(p))));
        }
        let mut faulted = 0u64;
        for &t in &touches {
            match uffd.touch_page(PageIdx::new(t)) {
                TouchOutcome::Resident => {
                    if prefetch.contains(&t) {
                        prop_assert_eq!(uffd.memory().page_bytes(PageIdx::new(t)).unwrap()[0], 0xAA);
                    }
                }
                TouchOutcome::Faulted(ev) => {
                    prop_assert!(!prefetch.contains(&t), "prefetched page faulted");
                    faulted += 1;
                    let p = uffd.page_of_fault(ev);
                    uffd.copy(p, &[0xCC; PAGE_SIZE]).unwrap();
                }
            }
        }
        prop_assert!(faulted <= touches.len() as u64);
        prop_assert_eq!(uffd.stats().faults, faulted);
    }
}
