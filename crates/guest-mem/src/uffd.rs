//! `userfaultfd` simulation.
//!
//! Reproduces the Linux user-level page-fault handling mechanism the paper
//! builds REAP on (§5.2):
//!
//! * the hypervisor registers the guest memory region (a range of *host
//!   virtual addresses*) and hands the fault channel to a monitor;
//! * first-touch accesses raise [`FaultEvent`]s carrying the faulting host
//!   virtual address;
//! * the monitor resolves the address to an offset in the guest memory
//!   file, retrieves the page from any source (local file, WS file, remote
//!   store) and installs it with [`Uffd::copy`] (`UFFDIO_COPY` semantics,
//!   including EEXIST on double-install), then wakes the faulting vCPU.
//!
//! The paper's Firecracker patch injects the *first* fault at the first
//! byte of guest memory so the monitor can learn the region base and derive
//! every later file offset by subtraction (§5.2.1); [`Uffd::inject_first_fault`]
//! models exactly that handshake.
//!
//! Besides the per-page API, the channel exposes a *run-length batched*
//! path ([`Uffd::next_missing_run`], [`Uffd::raise_run`], [`Uffd::copy_run`],
//! [`Uffd::wake_run`]) that serves a whole [`PageRun`] of consecutive
//! faults with one residency scan and one install, while keeping
//! [`UffdStats`] arithmetically identical to the per-page path.

use std::collections::VecDeque;

use crate::memory::{FrameBytes, GuestMemory, MemError};
use crate::page::{GuestAddr, PageIdx, PAGE_SIZE};
use crate::run::PageRun;

/// A pending page-fault event as read from the user-fault file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Faulting *host* virtual address (region base + guest-physical
    /// offset), as the kernel reports it.
    pub host_vaddr: u64,
    /// Monotone sequence number of the fault.
    pub seq: u64,
}

/// Outcome of a VM-side access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The page was resident; no fault.
    Resident,
    /// A fault was raised and queued for the monitor; the vCPU blocks.
    Faulted(FaultEvent),
}

/// Result of a bulk install ([`Uffd::copy_run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunInstall {
    /// Pages newly installed.
    pub installed: u64,
    /// Pages skipped because they were already resident (EEXIST).
    pub eexist: u64,
}

/// Counters the REAP evaluation reports (faults eliminated, §6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UffdStats {
    /// Faults raised by the VM.
    pub faults: u64,
    /// Successful `UFFDIO_COPY` installs.
    pub copies: u64,
    /// Installs that hit an already-resident page (EEXIST).
    pub copy_eexist: u64,
    /// `UFFDIO_ZEROPAGE` installs.
    pub zero_pages: u64,
    /// vCPU wake-ups.
    pub wakes: u64,
}

/// A guest memory region registered with the (simulated) userfaultfd.
///
/// # Example
///
/// ```
/// use guest_mem::{GuestMemory, PageIdx, TouchOutcome, Uffd, PAGE_SIZE};
///
/// let mem = GuestMemory::new(4 * 4096);
/// let mut uffd = Uffd::register(mem, 0x7f00_0000_0000);
/// // VM touches page 2 -> fault.
/// let TouchOutcome::Faulted(ev) = uffd.touch_page(PageIdx::new(2)) else {
///     panic!("expected fault");
/// };
/// // Monitor resolves the host address to a page and installs it.
/// let page = uffd.page_of_fault(ev);
/// uffd.copy(page, &[5u8; PAGE_SIZE]).unwrap();
/// uffd.wake();
/// assert_eq!(uffd.touch_page(PageIdx::new(2)), TouchOutcome::Resident);
/// ```
#[derive(Debug)]
pub struct Uffd {
    mem: GuestMemory,
    /// Host virtual address where the guest memory region is mapped.
    region_base: u64,
    pending: VecDeque<FaultEvent>,
    next_seq: u64,
    stats: UffdStats,
}

impl Uffd {
    /// Registers `mem` at the given host virtual base address and returns
    /// the fault channel.
    pub fn register(mem: GuestMemory, region_base: u64) -> Self {
        Uffd {
            mem,
            region_base,
            pending: VecDeque::new(),
            next_seq: 0,
            stats: UffdStats::default(),
        }
    }

    /// Host virtual base address of the registered region.
    pub fn region_base(&self) -> u64 {
        self.region_base
    }

    /// Shared view of the guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.mem
    }

    /// Mutable view of the guest memory (hypervisor-internal use).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.mem
    }

    /// Consumes the channel, returning the guest memory (deregistration).
    pub fn into_memory(self) -> GuestMemory {
        self.mem
    }

    /// Fault counters.
    pub fn stats(&self) -> UffdStats {
        self.stats
    }

    fn raise(&mut self, page: PageIdx) -> FaultEvent {
        let ev = FaultEvent {
            host_vaddr: self.region_base + page.file_offset(),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.stats.faults += 1;
        self.pending.push_back(ev);
        ev
    }

    /// VM-side: attempts to access `page`. If non-resident, raises a fault
    /// (the vCPU halts until the monitor installs the page and wakes it).
    pub fn touch_page(&mut self, page: PageIdx) -> TouchOutcome {
        if self.mem.is_resident(page) {
            TouchOutcome::Resident
        } else {
            TouchOutcome::Faulted(self.raise(page))
        }
    }

    /// VM-side: attempts to access the byte range `[addr, addr + len)`,
    /// returning the first fault if any page is missing.
    pub fn touch_range(&mut self, addr: GuestAddr, len: u64) -> TouchOutcome {
        let mut cur = addr.page();
        let last = if len == 0 {
            return TouchOutcome::Resident;
        } else {
            GuestAddr::new(addr.as_u64() + len - 1).page()
        };
        while cur <= last {
            if !self.mem.is_resident(cur) {
                return TouchOutcome::Faulted(self.raise(cur));
            }
            cur = cur.next();
        }
        TouchOutcome::Resident
    }

    /// VM-side, batched: the maximal run of missing pages inside `window`
    /// starting at or after `from` — a pure residency query, no fault is
    /// raised yet.
    pub fn next_missing_run(&self, from: PageIdx, window: PageRun) -> Option<PageRun> {
        self.mem.next_missing_run(from, window)
    }

    /// VM-side, batched: raises one fault per page of `run` in a single
    /// operation. The faults are accounted exactly as `run.len` calls to
    /// [`touch_page`](Self::touch_page) on missing pages would be, but the
    /// events are *not* queued: the caller serves the run synchronously
    /// (the vCPU is halted on the first page anyway). Returns the event of
    /// the run's first page; per-page events are reconstructible as
    /// `host_vaddr + i * PAGE_SIZE` / `seq + i`.
    ///
    /// # Panics
    ///
    /// Panics if any page of the run is already resident (a replay bug).
    pub fn raise_run(&mut self, run: PageRun) -> FaultEvent {
        debug_assert!(
            !run.is_empty() && self.mem.next_missing_run(run.first, run) == Some(run),
            "raise_run requires a maximal missing run"
        );
        let ev = FaultEvent {
            host_vaddr: self.region_base + run.first.file_offset(),
            seq: self.next_seq,
        };
        self.next_seq += run.len;
        self.stats.faults += run.len;
        ev
    }

    /// The paper's Firecracker patch: before resuming vCPUs, inject a fault
    /// at the *first byte* of guest memory so the monitor learns the region
    /// base address (§5.2.1).
    pub fn inject_first_fault(&mut self) -> FaultEvent {
        self.raise(PageIdx::new(0))
    }

    /// Monitor-side: next pending fault, if any (the `epoll` read).
    pub fn poll(&mut self) -> Option<FaultEvent> {
        self.pending.pop_front()
    }

    /// Monitor-side: number of queued faults.
    pub fn pending_faults(&self) -> usize {
        self.pending.len()
    }

    /// Monitor-side: translates a fault's host virtual address into the
    /// guest page, given the region base learned from the injected first
    /// fault.
    ///
    /// # Panics
    ///
    /// Panics if the address lies below the region base (a monitor bug).
    pub fn page_of_fault(&self, ev: FaultEvent) -> PageIdx {
        assert!(
            ev.host_vaddr >= self.region_base,
            "fault below region base"
        );
        GuestAddr::new(ev.host_vaddr - self.region_base).page()
    }

    /// Monitor-side `UFFDIO_COPY`: installs one page of content.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyResident`] (EEXIST) if the page is mapped —
    /// callers treat this as benign during prefetch races, as the kernel
    /// API does — or [`MemError::OutOfBounds`].
    pub fn copy(&mut self, page: PageIdx, data: &[u8]) -> Result<(), MemError> {
        match self.mem.install_page(page, data) {
            Ok(()) => {
                self.stats.copies += 1;
                Ok(())
            }
            Err(e @ MemError::AlreadyResident(_)) => {
                self.stats.copy_eexist += 1;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side bulk `UFFDIO_COPY`: installs a whole run in one
    /// operation. A fully-missing run is one residency scan plus one copy;
    /// runs with resident holes fall back to per-page installs so EEXIST
    /// races stay benign and exactly counted, as the kernel API behaves
    /// under concurrent prefetch (§5.2).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the run leaves the region; EEXIST is
    /// *not* an error here, it is reported in the returned counts.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `run.len` pages.
    pub fn copy_run(&mut self, run: PageRun, data: &[u8]) -> Result<RunInstall, MemError> {
        assert_eq!(
            data.len() as u64,
            run.byte_len(),
            "copy_run needs exactly the run's bytes"
        );
        match self.mem.install_run(run, data) {
            Ok(()) => {
                self.stats.copies += run.len;
                Ok(RunInstall {
                    installed: run.len,
                    eexist: 0,
                })
            }
            Err(MemError::AlreadyResident(_)) => {
                let mut result = RunInstall::default();
                for (i, page) in run.iter().enumerate() {
                    match self.copy(page, &data[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]) {
                        Ok(()) => result.installed += 1,
                        Err(MemError::AlreadyResident(_)) => result.eexist += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side bulk `UFFDIO_COPY` with caller-filled contents: the
    /// run's frames are reserved first, then `fill` populates them in
    /// place (e.g. one `FileStore::read_into` straight from the snapshot
    /// file — no intermediate buffer).
    ///
    /// Unlike [`copy_run`](Self::copy_run) the entire run must be missing.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyResident`] / [`MemError::OutOfBounds`] as
    /// [`GuestMemory::install_run_with`]; nothing installed on error.
    pub fn copy_run_with(
        &mut self,
        run: PageRun,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), MemError> {
        match self.mem.install_run_with(run, fill) {
            Ok(()) => {
                self.stats.copies += run.len;
                Ok(())
            }
            Err(e @ MemError::AlreadyResident(_)) => {
                self.stats.copy_eexist += 1;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side bulk `UFFDIO_COPY` over *several* disjoint runs with
    /// caller-filled contents — the prefetch-lane entry point. All runs'
    /// frames are reserved first, then `fill` receives every
    /// `(run index, buffer)` pair at once and may populate them from
    /// parallel lanes (see [`GuestMemory::install_runs_with`]). Returns
    /// the number of pages installed, accounted as that many copies.
    ///
    /// Unlike [`copy_run`](Self::copy_run) there is no per-page EEXIST
    /// fallback: the install is all-or-nothing, and a batch touching any
    /// resident page fails with one `copy_eexist` tick. Callers that may
    /// race with other installs must split resident pages out first (as
    /// the monitor's lane prefetcher does).
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyResident`] / [`MemError::OutOfBounds`] as
    /// [`GuestMemory::install_runs_with`]; nothing installed on error.
    ///
    /// # Panics
    ///
    /// Panics if the runs overlap each other.
    pub fn copy_runs_with(
        &mut self,
        runs: &[PageRun],
        fill: impl FnOnce(Vec<(usize, &mut [u8])>),
    ) -> Result<u64, MemError> {
        match self.mem.install_runs_with(runs, fill) {
            Ok(()) => {
                let total: u64 = runs.iter().map(|r| r.len).sum();
                self.stats.copies += total;
                Ok(total)
            }
            Err(e @ MemError::AlreadyResident(_)) => {
                self.stats.copy_eexist += 1;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side zero-copy bulk install: like
    /// [`copy_run`](Self::copy_run), but the run's frames become shared
    /// aliases of the refcounted `src` buffer (starting at page
    /// `src_page_offset`) instead of copies — the snapshot-frame-cache
    /// serve path. Accounting is **arithmetically identical** to
    /// `copy_run`: a fully-missing run counts `run.len` copies; a run
    /// with resident holes falls back to per-page aliasing, counting each
    /// resident page as one EEXIST, exactly as the copying fallback does.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the run leaves the region; EEXIST is
    /// *not* an error here, it is reported in the returned counts.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not cover the aliased range.
    pub fn alias_run(
        &mut self,
        run: PageRun,
        src: &FrameBytes,
        src_page_offset: u64,
    ) -> Result<RunInstall, MemError> {
        match self.mem.alias_run(run, src, src_page_offset) {
            Ok(()) => {
                self.stats.copies += run.len;
                Ok(RunInstall {
                    installed: run.len,
                    eexist: 0,
                })
            }
            Err(MemError::AlreadyResident(_)) => {
                let mut result = RunInstall::default();
                for (i, page) in run.iter().enumerate() {
                    match self
                        .mem
                        .alias_run(PageRun::single(page), src, src_page_offset + i as u64)
                    {
                        Ok(()) => {
                            self.stats.copies += 1;
                            result.installed += 1;
                        }
                        Err(MemError::AlreadyResident(_)) => {
                            self.stats.copy_eexist += 1;
                            result.eexist += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side `UFFDIO_ZEROPAGE`.
    ///
    /// # Errors
    ///
    /// Same as [`copy`](Self::copy).
    pub fn zeropage(&mut self, page: PageIdx) -> Result<(), MemError> {
        match self.mem.install_zero_page(page) {
            Ok(()) => {
                self.stats.zero_pages += 1;
                Ok(())
            }
            Err(e @ MemError::AlreadyResident(_)) => {
                self.stats.copy_eexist += 1;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Monitor-side: wakes the faulting vCPU (`UFFDIO_WAKE`). The monitor
    /// may install any number of pages before waking (§5.2 — REAP installs
    /// the whole working set, then wakes once).
    pub fn wake(&mut self) {
        self.stats.wakes += 1;
    }

    /// Monitor-side, batched: accounts `pages` wake-ups at once — the
    /// run path's equivalent of one [`wake`](Self::wake) per served fault.
    pub fn wake_run(&mut self, pages: u64) {
        self.stats.wakes += pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn setup() -> Uffd {
        Uffd::register(GuestMemory::new(16 * 4096), 0x7f00_0000_0000)
    }

    #[test]
    fn fault_carries_host_vaddr() {
        let mut u = setup();
        let TouchOutcome::Faulted(ev) = u.touch_page(PageIdx::new(3)) else {
            panic!("expected fault");
        };
        assert_eq!(ev.host_vaddr, 0x7f00_0000_0000 + 3 * 4096);
        assert_eq!(u.page_of_fault(ev), PageIdx::new(3));
        assert_eq!(u.pending_faults(), 1);
        assert_eq!(u.poll(), Some(ev));
        assert_eq!(u.poll(), None);
    }

    #[test]
    fn first_fault_injection_names_byte_zero() {
        let mut u = setup();
        let ev = u.inject_first_fault();
        assert_eq!(ev.host_vaddr, u.region_base());
        assert_eq!(u.page_of_fault(ev), PageIdx::new(0));
        assert_eq!(ev.seq, 0, "injected fault is the very first event");
    }

    #[test]
    fn copy_resolves_fault() {
        let mut u = setup();
        let TouchOutcome::Faulted(ev) = u.touch_page(PageIdx::new(1)) else {
            panic!()
        };
        let page = u.page_of_fault(ev);
        u.copy(page, &[9u8; PAGE_SIZE]).unwrap();
        u.wake();
        assert_eq!(u.touch_page(PageIdx::new(1)), TouchOutcome::Resident);
        let st = u.stats();
        assert_eq!(st.faults, 1);
        assert_eq!(st.copies, 1);
        assert_eq!(st.wakes, 1);
    }

    #[test]
    fn double_copy_is_eexist_and_counted() {
        let mut u = setup();
        u.copy(PageIdx::new(2), &[1u8; PAGE_SIZE]).unwrap();
        let err = u.copy(PageIdx::new(2), &[2u8; PAGE_SIZE]).unwrap_err();
        assert_eq!(err, MemError::AlreadyResident(PageIdx::new(2)));
        assert_eq!(u.stats().copy_eexist, 1);
        // Contents from the first copy survive.
        assert_eq!(u.memory().page_bytes(PageIdx::new(2)).unwrap()[0], 1);
    }

    #[test]
    fn touch_range_faults_first_missing_page() {
        let mut u = setup();
        u.copy(PageIdx::new(0), &[0u8; PAGE_SIZE]).unwrap();
        // Range spans pages 0..=2; page 1 missing.
        let TouchOutcome::Faulted(ev) = u.touch_range(GuestAddr::new(100), 2 * 4096) else {
            panic!("expected fault")
        };
        assert_eq!(u.page_of_fault(ev), PageIdx::new(1));
        // Empty range never faults.
        assert_eq!(u.touch_range(GuestAddr::new(0), 0), TouchOutcome::Resident);
    }

    #[test]
    fn faults_queue_in_order() {
        let mut u = setup();
        u.touch_page(PageIdx::new(5));
        u.touch_page(PageIdx::new(2));
        u.touch_page(PageIdx::new(9));
        let order: Vec<u64> = std::iter::from_fn(|| u.poll())
            .map(|ev| (ev.host_vaddr - 0x7f00_0000_0000) / 4096)
            .collect();
        assert_eq!(order, vec![5, 2, 9]);
    }

    #[test]
    fn zeropage_counts() {
        let mut u = setup();
        u.zeropage(PageIdx::new(7)).unwrap();
        assert_eq!(u.stats().zero_pages, 1);
        assert!(u.zeropage(PageIdx::new(7)).is_err());
        assert_eq!(u.stats().copy_eexist, 1);
    }

    #[test]
    fn into_memory_returns_installed_state() {
        let mut u = setup();
        u.copy(PageIdx::new(4), &[3u8; PAGE_SIZE]).unwrap();
        let mem = u.into_memory();
        assert_eq!(mem.resident_pages(), 1);
        assert!(mem.is_resident(PageIdx::new(4)));
    }

    #[test]
    fn resident_touch_raises_nothing() {
        let mut u = setup();
        u.copy(PageIdx::new(0), &[0u8; PAGE_SIZE]).unwrap();
        assert_eq!(u.touch_page(PageIdx::new(0)), TouchOutcome::Resident);
        assert_eq!(u.stats().faults, 0);
        assert_eq!(u.pending_faults(), 0);
    }

    #[test]
    fn run_path_counts_match_per_page_semantics() {
        // Serve pages 2..=5 via the batched path; stats must equal four
        // per-page fault/copy/wake round trips.
        let mut u = setup();
        let window = PageRun::new(PageIdx::new(2), 4);
        let run = u.next_missing_run(PageIdx::new(2), window).unwrap();
        assert_eq!(run, window, "fresh memory: whole window missing");
        let ev = u.raise_run(run);
        assert_eq!(ev.seq, 0);
        assert_eq!(u.page_of_fault(ev), PageIdx::new(2));
        let data = vec![7u8; run.byte_len() as usize];
        let install = u.copy_run(run, &data).unwrap();
        assert_eq!(install, RunInstall { installed: 4, eexist: 0 });
        u.wake_run(run.len);
        let st = u.stats();
        assert_eq!((st.faults, st.copies, st.wakes, st.copy_eexist), (4, 4, 4, 0));
        assert_eq!(u.pending_faults(), 0, "batched path queues nothing");
        // Sequence numbers advanced per page: the next fault is seq 4.
        let TouchOutcome::Faulted(next) = u.touch_page(PageIdx::new(9)) else {
            panic!("page 9 missing");
        };
        assert_eq!(next.seq, 4);
    }

    #[test]
    fn copy_run_with_resident_holes_counts_eexist() {
        let mut u = setup();
        u.copy(PageIdx::new(3), &[1u8; PAGE_SIZE]).unwrap();
        let run = PageRun::new(PageIdx::new(2), 3); // page 3 resident
        let data = vec![9u8; run.byte_len() as usize];
        let install = u.copy_run(run, &data).unwrap();
        assert_eq!(install, RunInstall { installed: 2, eexist: 1 });
        assert_eq!(u.stats().copies, 3);
        assert_eq!(u.stats().copy_eexist, 1);
        // The resident page kept its original contents.
        assert_eq!(u.memory().page_bytes(PageIdx::new(3)).unwrap()[0], 1);
        assert_eq!(u.memory().page_bytes(PageIdx::new(2)).unwrap()[0], 9);
    }

    #[test]
    fn copy_run_with_fills_in_place() {
        let mut u = setup();
        let run = PageRun::new(PageIdx::new(1), 2);
        u.copy_run_with(run, |buf| buf.fill(0x42)).unwrap();
        assert_eq!(u.stats().copies, 2);
        assert!(u.memory().is_run_resident(run));
        // Resident target is EEXIST, counted once per batched attempt.
        let err = u.copy_run_with(run, |buf| buf.fill(0)).unwrap_err();
        assert!(matches!(err, MemError::AlreadyResident(_)));
        assert_eq!(u.stats().copy_eexist, 1);
    }

    #[test]
    fn copy_runs_with_counts_like_per_run_copies() {
        let mut u = setup();
        let runs = [PageRun::new(PageIdx::new(2), 3), PageRun::new(PageIdx::new(10), 2)];
        let installed = u
            .copy_runs_with(&runs, |bufs| {
                for (i, buf) in bufs {
                    buf.fill(0x10 + i as u8);
                }
            })
            .unwrap();
        assert_eq!(installed, 5);
        assert_eq!(u.stats().copies, 5);
        assert!(u.memory().is_run_resident(runs[0]));
        assert_eq!(u.memory().page_bytes(PageIdx::new(11)).unwrap()[0], 0x11);
        // A colliding batch is EEXIST, counted once per attempt.
        let err = u.copy_runs_with(&runs, |_| {}).unwrap_err();
        assert!(matches!(err, MemError::AlreadyResident(_)));
        assert_eq!(u.stats().copy_eexist, 1);
    }

    #[test]
    fn alias_run_counts_exactly_like_copy_run() {
        // Two channels served the same shape — one by copy, one by alias —
        // must end with identical stats and identical bytes.
        let mut by_copy = setup();
        let mut by_alias = setup();
        // Page 3 resident in both, so the run has an EEXIST hole.
        by_copy.copy(PageIdx::new(3), &[0xEE; PAGE_SIZE]).unwrap();
        by_alias.copy(PageIdx::new(3), &[0xEE; PAGE_SIZE]).unwrap();
        let run = PageRun::new(PageIdx::new(2), 3);
        let data = vec![0x55u8; run.byte_len() as usize];
        let src: FrameBytes = std::sync::Arc::new(data.clone());
        let a = by_copy.copy_run(run, &data).unwrap();
        let b = by_alias.alias_run(run, &src, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, RunInstall { installed: 2, eexist: 1 });
        assert_eq!(by_copy.stats(), by_alias.stats());
        for p in 2..5u64 {
            assert_eq!(
                by_copy.memory().page_bytes(PageIdx::new(p)),
                by_alias.memory().page_bytes(PageIdx::new(p)),
                "page {p}"
            );
        }
        // A fully-missing aliased run is zero-copy and counted as copies.
        let run2 = PageRun::new(PageIdx::new(8), 2);
        let src2: FrameBytes = std::sync::Arc::new(vec![1u8; run2.byte_len() as usize]);
        assert_eq!(
            by_alias.alias_run(run2, &src2, 0).unwrap(),
            RunInstall { installed: 2, eexist: 0 }
        );
        assert_eq!(by_alias.memory().aliased_pages(), 4);
    }

    #[test]
    fn alias_run_out_of_bounds() {
        let mut u = setup();
        let run = PageRun::new(PageIdx::new(15), 4);
        let src: FrameBytes = std::sync::Arc::new(vec![0u8; run.byte_len() as usize]);
        assert!(matches!(
            u.alias_run(run, &src, 0),
            Err(MemError::OutOfBounds(_))
        ));
        assert_eq!(u.stats().copies, 0);
    }

    #[test]
    fn copy_run_out_of_bounds() {
        let mut u = setup();
        let run = PageRun::new(PageIdx::new(15), 4);
        let data = vec![0u8; run.byte_len() as usize];
        assert!(matches!(
            u.copy_run(run, &data),
            Err(MemError::OutOfBounds(_))
        ));
    }
}
