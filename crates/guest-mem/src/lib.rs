#![warn(missing_docs)]
//! # guest-mem
//!
//! Guest physical memory with `userfaultfd`-style lazy paging.
//!
//! In the paper, a Firecracker VM restored from a snapshot maps its guest
//! memory file as an *anonymous* region registered with Linux
//! `userfaultfd` (§5.2): the first access to each page raises a fault that
//! a userspace **monitor** serves by `ioctl(UFFDIO_COPY)`-ing the page
//! contents in. This crate reproduces that machinery:
//!
//! * [`GuestMemory`] — a sparse array of 4 KB frames holding real bytes;
//!   non-resident accesses report which page is missing.
//! * [`Uffd`] — the fault channel: the VM side *touches* addresses, the
//!   monitor side *polls* fault events and *copies* pages in (with the same
//!   `EEXIST`-on-double-install semantics as the kernel API).
//! * [`checksum`] — page fingerprints used by the test suite to prove that
//!   REAP installs exactly the bytes the snapshot captured.

pub mod checksum;
pub mod memory;
pub mod page;
pub mod run;
pub mod uffd;

pub use checksum::fnv1a64;
pub use memory::{FrameBytes, GuestMemory, MemError};
pub use page::{GuestAddr, PageIdx, PAGE_SIZE};
pub use run::{coalesce_ordered, push_coalesced, PageBitmap, PageRun};
pub use uffd::{FaultEvent, RunInstall, TouchOutcome, Uffd, UffdStats};
