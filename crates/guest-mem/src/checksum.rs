//! Content fingerprints for correctness checking.
//!
//! The functional layer verifies that a restored instance's resident pages
//! are byte-identical to the snapshot (and that REAP's working-set file
//! round-trips losslessly) by comparing FNV-1a fingerprints.

/// 64-bit FNV-1a hash.
///
/// # Example
///
/// ```
/// use guest_mem::fnv1a64;
///
/// assert_ne!(fnv1a64(b"page A"), fnv1a64(b"page B"));
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministically fills `buf` with content derived from a label and an
/// index — used to give every synthetic guest page distinctive,
/// verifiable contents.
pub fn fill_deterministic(buf: &mut [u8], label: u64, index: u64) {
    let mut state = fnv1a64(&label.to_le_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for chunk in buf.chunks_mut(8) {
        // xorshift64* step per 8 bytes.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let bytes = v.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fill_is_deterministic_and_distinct() {
        let mut a = [0u8; 4096];
        let mut b = [0u8; 4096];
        fill_deterministic(&mut a, 7, 42);
        fill_deterministic(&mut b, 7, 42);
        assert_eq!(a, b);
        fill_deterministic(&mut b, 7, 43);
        assert_ne!(a.to_vec(), b.to_vec());
        fill_deterministic(&mut b, 8, 42);
        assert_ne!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn fill_handles_non_multiple_of_eight() {
        let mut buf = [0u8; 13];
        fill_deterministic(&mut buf, 1, 2);
        // No panic, and the tail is filled too (nonzero with overwhelming
        // probability for this label/index pair).
        assert!(buf.iter().any(|&b| b != 0));
    }
}
