//! Content fingerprints for correctness checking.
//!
//! The functional layer verifies that a restored instance's resident pages
//! are byte-identical to the snapshot (and that REAP's working-set file
//! round-trips losslessly) by comparing FNV-1a fingerprints.
//!
//! The implementations live in [`sim_core::hash`] — this module re-exports
//! them so the long-standing `guest_mem::fnv1a64` surface (used by the
//! storage, core and guest-os layers) stays stable.

pub use sim_core::hash::{fill_deterministic, fnv1a64, Fnv1a64};

#[cfg(test)]
mod tests {
    use super::*;

    // Equivalence pins against the implementation this module carried
    // before it delegated to sim_core::hash.
    fn legacy_fnv1a64(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    fn legacy_fill_deterministic(buf: &mut [u8], label: u64, index: u64) {
        let mut state =
            legacy_fnv1a64(&label.to_le_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in buf.chunks_mut(8) {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_matches_legacy_implementation() {
        let mut data = Vec::new();
        for i in 0u32..4096 {
            data.push((i.wrapping_mul(2654435761) >> 13) as u8);
            assert_eq!(fnv1a64(&data), legacy_fnv1a64(&data), "len {}", data.len());
            if data.len() >= 64 {
                break;
            }
        }
        let page: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(fnv1a64(&page), legacy_fnv1a64(&page));
    }

    #[test]
    fn fill_matches_legacy_implementation() {
        for (label, index, len) in [(7u64, 42u64, 4096usize), (1, 2, 13), (0, 0, 8), (9, 1, 1)] {
            let mut new_buf = vec![0u8; len];
            let mut old_buf = vec![0u8; len];
            fill_deterministic(&mut new_buf, label, index);
            legacy_fill_deterministic(&mut old_buf, label, index);
            assert_eq!(new_buf, old_buf, "label {label} index {index} len {len}");
        }
    }

    #[test]
    fn fill_is_deterministic_and_distinct() {
        let mut a = [0u8; 4096];
        let mut b = [0u8; 4096];
        fill_deterministic(&mut a, 7, 42);
        fill_deterministic(&mut b, 7, 42);
        assert_eq!(a, b);
        fill_deterministic(&mut b, 7, 43);
        assert_ne!(a.to_vec(), b.to_vec());
        fill_deterministic(&mut b, 8, 42);
        assert_ne!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn fill_handles_non_multiple_of_eight() {
        let mut buf = [0u8; 13];
        fill_deterministic(&mut buf, 1, 2);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
