//! Sparse guest physical memory.
//!
//! Frames are allocated on install, so a freshly "restored" VM occupies no
//! memory until pages are faulted or prefetched in — exactly the property
//! the paper measures in Fig 4 (snapshot-restored instances touch 8–99 MB
//! of their 256 MB guest memory).
//!
//! Residency and dirty state are word-packed bitmaps and frame bytes live
//! in a single slab arena (one growing allocation, no per-page boxes), so
//! the batched fault path of §5.2 can install a whole [`PageRun`] with one
//! bounds check and one copy.
//!
//! Frames come in two flavours:
//!
//! * **private** — bytes owned by this instance's slab arena (every
//!   `install_*` API);
//! * **shared** — refcounted, read-only aliases of a [`FrameBytes`]
//!   buffer owned elsewhere (the snapshot frame cache), installed by
//!   [`GuestMemory::alias_run`] with *zero* byte copies. A guest write to
//!   a shared frame breaks copy-on-write: the page silently gets a
//!   private copy first, so residency, dirty tracking and every observable
//!   byte behave exactly as if the page had been copied in eagerly.

use std::fmt;
use std::sync::Arc;

use crate::checksum::fnv1a64;
use crate::page::{GuestAddr, PageIdx, PAGE_SIZE};
use crate::run::{PageBitmap, PageRun};

/// Errors raised by guest memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access touched a page that is not resident (would page-fault).
    NotResident(PageIdx),
    /// Access fell outside the guest memory region.
    OutOfBounds(GuestAddr),
    /// `UFFDIO_COPY` target page is already mapped (kernel returns EEXIST).
    AlreadyResident(PageIdx),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotResident(p) => write!(f, "page {p} is not resident"),
            MemError::OutOfBounds(a) => write!(f, "address {a} is out of bounds"),
            MemError::AlreadyResident(p) => write!(f, "page {p} is already resident"),
        }
    }
}

impl std::error::Error for MemError {}

/// Page has no frame slot assigned.
const NO_SLOT: u32 = u32::MAX;

/// Slot values with this bit set index the shared-frame table instead of
/// the private arena ([`NO_SLOT`] is checked first and never aliases).
const SHARED_BIT: u32 = 1 << 31;

/// A refcounted, immutable buffer whose pages can back guest frames in
/// many [`GuestMemory`] instances at once (the snapshot frame cache hands
/// these out). Cloning is a refcount bump; the bytes are never copied
/// until a guest write forces a CoW break.
pub type FrameBytes = Arc<Vec<u8>>;

/// Guest physical memory: a fixed-size region of lazily-populated 4 KB
/// frames, with KVM-style dirty-page tracking (the mechanism behind
/// Firecracker's *diff snapshots*).
///
/// # Example
///
/// ```
/// use guest_mem::{GuestAddr, GuestMemory, MemError, PageIdx};
///
/// let mut mem = GuestMemory::new(16 * 4096);
/// assert_eq!(
///     mem.read(GuestAddr::new(0), 4).unwrap_err(),
///     MemError::NotResident(PageIdx::new(0))
/// );
/// mem.install_page(PageIdx::new(0), &[7u8; 4096]).unwrap();
/// assert_eq!(mem.read(GuestAddr::new(0), 2).unwrap(), vec![7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct GuestMemory {
    /// page -> frame slot in `arena`, or [`NO_SLOT`].
    slots: Vec<u32>,
    /// Frame bytes; slot `s` occupies `[s * PAGE_SIZE, (s + 1) * PAGE_SIZE)`.
    arena: Vec<u8>,
    /// Slots freed by eviction, reusable by later installs.
    free_slots: Vec<u32>,
    /// Shared-frame table: entry `s` backs the page whose slot is
    /// `SHARED_BIT | s` with page `offset` of the refcounted buffer.
    /// Entries are `None` after a CoW break or eviction and reused via
    /// `free_shared`.
    shared: Vec<Option<(FrameBytes, u32)>>,
    /// Shared entries freed by CoW breaks/eviction, reusable by aliases.
    free_shared: Vec<u32>,
    resident: PageBitmap,
    /// Pages written since the last [`clear_dirty`](Self::clear_dirty)
    /// (installs count as writes, as KVM's dirty log sees them).
    dirty: PageBitmap,
    dirty_tracking: bool,
    /// CoW breaks this instance has performed: guest writes that turned a
    /// shared frame-cache alias into a private copy.
    cow_breaks: u64,
}

impl GuestMemory {
    /// Creates a region of `bytes` (rounded up to whole pages), fully
    /// non-resident.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes > 0, "guest memory must be non-empty");
        let pages = bytes.div_ceil(PAGE_SIZE as u64);
        GuestMemory {
            slots: vec![NO_SLOT; pages as usize],
            arena: Vec::new(),
            free_slots: Vec::new(),
            shared: Vec::new(),
            free_shared: Vec::new(),
            resident: PageBitmap::new(pages),
            dirty: PageBitmap::new(pages),
            dirty_tracking: false,
            cow_breaks: 0,
        }
    }

    /// Enables KVM-style dirty logging: subsequent installs and writes are
    /// recorded until [`clear_dirty`](Self::clear_dirty).
    pub fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_tracking = enabled;
    }

    /// True if dirty logging is on.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_tracking
    }

    /// Pages dirtied since tracking was last cleared, ascending.
    pub fn dirty_pages(&self) -> impl Iterator<Item = PageIdx> + '_ {
        self.dirty.iter()
    }

    /// Maximal runs of dirty pages, ascending.
    pub fn dirty_runs(&self) -> Vec<PageRun> {
        self.dirty.runs()
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> u64 {
        self.dirty.count()
    }

    /// Clears the dirty log (after capturing a diff snapshot).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear_all();
    }

    fn mark_dirty(&mut self, page: PageIdx) {
        if self.dirty_tracking {
            self.dirty.set(page);
        }
    }

    fn mark_dirty_run(&mut self, run: PageRun) {
        if self.dirty_tracking {
            self.dirty.set_run(run);
        }
    }

    /// Region size in pages.
    pub fn num_pages(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages() * PAGE_SIZE as u64
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident.count()
    }

    /// Resident set size in bytes — the `ps`-style footprint the paper
    /// reports in Fig 4.
    pub fn footprint_bytes(&self) -> u64 {
        self.resident.count() * PAGE_SIZE as u64
    }

    /// Number of CoW breaks performed so far: guest writes that replaced
    /// a zero-copy shared alias (installed by
    /// [`alias_run`](Self::alias_run)) with a private copy. Fleet metrics
    /// read this per invocation.
    pub fn cow_breaks(&self) -> u64 {
        self.cow_breaks
    }

    /// True if `page` is resident.
    pub fn is_resident(&self, page: PageIdx) -> bool {
        self.resident.get(page)
    }

    /// True if every page of `run` is resident.
    pub fn is_run_resident(&self, run: PageRun) -> bool {
        self.resident.all_set_in(run)
    }

    /// True if `page` lies within the region.
    pub fn contains_page(&self, page: PageIdx) -> bool {
        (page.as_u64() as usize) < self.slots.len()
    }

    /// True if `run` lies entirely within the region.
    pub fn contains_run(&self, run: PageRun) -> bool {
        run.first.as_u64() + run.len <= self.num_pages()
    }

    fn check_range(&self, addr: GuestAddr, len: u64) -> Result<(), MemError> {
        if addr.as_u64() + len > self.size_bytes() {
            return Err(MemError::OutOfBounds(addr));
        }
        Ok(())
    }

    fn frame(&self, page: PageIdx) -> Option<&[u8]> {
        let slot = *self.slots.get(page.as_u64() as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        if slot & SHARED_BIT != 0 {
            let (src, off) = self.shared[(slot & !SHARED_BIT) as usize]
                .as_ref()
                .expect("slot points at a live shared frame");
            let base = *off as usize * PAGE_SIZE;
            return Some(&src[base..base + PAGE_SIZE]);
        }
        let base = slot as usize * PAGE_SIZE;
        Some(&self.arena[base..base + PAGE_SIZE])
    }

    /// Mutable frame access; breaks copy-on-write first if the page is a
    /// shared alias, so callers always get exclusively-owned bytes.
    fn frame_mut(&mut self, page: PageIdx) -> Option<&mut [u8]> {
        let idx = page.as_u64() as usize;
        let slot = *self.slots.get(idx)?;
        if slot == NO_SLOT {
            return None;
        }
        let slot = if slot & SHARED_BIT != 0 {
            self.break_cow(page)
        } else {
            slot
        };
        let base = slot as usize * PAGE_SIZE;
        Some(&mut self.arena[base..base + PAGE_SIZE])
    }

    /// Replaces a shared alias with a private copy of its bytes (the CoW
    /// break a guest write triggers). Returns the new private slot.
    fn break_cow(&mut self, page: PageIdx) -> u32 {
        self.cow_breaks += 1;
        let idx = page.as_u64() as usize;
        let shared_idx = (self.slots[idx] & !SHARED_BIT) as usize;
        let (src, off) = self.shared[shared_idx]
            .take()
            .expect("CoW break on a live shared frame");
        self.free_shared.push(shared_idx as u32);
        let slot = self.alloc_slot();
        let base = slot as usize * PAGE_SIZE;
        let sbase = off as usize * PAGE_SIZE;
        self.arena[base..base + PAGE_SIZE].copy_from_slice(&src[sbase..sbase + PAGE_SIZE]);
        self.slots[idx] = slot;
        slot
    }

    /// Hands out one shared-table entry, recycling freed entries first.
    fn alloc_shared(&mut self, src: &FrameBytes, page_off: u32) -> u32 {
        if let Some(i) = self.free_shared.pop() {
            self.shared[i as usize] = Some((src.clone(), page_off));
            return i;
        }
        let i = self.shared.len() as u32;
        self.shared.push(Some((src.clone(), page_off)));
        i
    }

    /// Hands out one frame slot, recycling evicted slots first.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            return slot;
        }
        let slot = (self.arena.len() / PAGE_SIZE) as u32;
        self.arena.resize(self.arena.len() + PAGE_SIZE, 0);
        slot
    }

    /// Reserves `len` *contiguous* fresh slots at the arena tail and
    /// returns the first slot index — the bulk-install fast path.
    fn alloc_contiguous_slots(&mut self, len: u64) -> u32 {
        let first = (self.arena.len() / PAGE_SIZE) as u32;
        self.arena
            .resize(self.arena.len() + len as usize * PAGE_SIZE, 0);
        first
    }

    fn check_installable(&self, run: PageRun) -> Result<(), MemError> {
        if !self.contains_run(run) {
            return Err(MemError::OutOfBounds(run.first.base_addr()));
        }
        if self.resident.any_set_in(run) {
            let taken = run
                .iter()
                .find(|&p| self.resident.get(p))
                .expect("any_set_in found one");
            return Err(MemError::AlreadyResident(taken));
        }
        Ok(())
    }

    /// Installs page contents (the `UFFDIO_COPY` destination operation).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyResident`] if the page is mapped (kernel
    /// EEXIST) and [`MemError::OutOfBounds`] if outside the region.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page.
    pub fn install_page(&mut self, page: PageIdx, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(data.len(), PAGE_SIZE, "install needs exactly one page");
        self.check_installable(PageRun::single(page))?;
        let slot = self.alloc_slot();
        let base = slot as usize * PAGE_SIZE;
        self.arena[base..base + PAGE_SIZE].copy_from_slice(data);
        self.slots[page.as_u64() as usize] = slot;
        self.resident.set(page);
        self.mark_dirty(page);
        Ok(())
    }

    /// Installs a zero page (`UFFDIO_ZEROPAGE`).
    ///
    /// # Errors
    ///
    /// Same as [`install_page`](Self::install_page).
    pub fn install_zero_page(&mut self, page: PageIdx) -> Result<(), MemError> {
        self.install_run_with(PageRun::single(page), |buf| buf.fill(0))
    }

    /// Bulk `UFFDIO_COPY`: installs `run.len` pages of contents in one
    /// operation — one residency check, one (parallel for multi-MB runs)
    /// copy straight into the frame arena, no per-page allocation and no
    /// intermediate zero-fill.
    ///
    /// Nothing is installed unless the *entire* run is installable.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyResident`] names the first mapped page;
    /// [`MemError::OutOfBounds`] if the run leaves the region.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `run.len` pages.
    pub fn install_run(&mut self, run: PageRun, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(
            data.len() as u64,
            run.byte_len(),
            "install_run needs exactly the run's bytes"
        );
        if run.is_empty() {
            return Ok(());
        }
        self.check_installable(run)?;
        if self.free_slots.is_empty() {
            // Fast path: the run's frames extend the arena contiguously;
            // the install is exactly one copy from `data`.
            let first_slot = (self.arena.len() / PAGE_SIZE) as u32;
            sim_core::extend_par(&mut self.arena, data);
            for (i, page) in run.iter().enumerate() {
                self.slots[page.as_u64() as usize] = first_slot + i as u32;
            }
        } else {
            for (i, page) in run.iter().enumerate() {
                let slot = self.alloc_slot();
                let base = slot as usize * PAGE_SIZE;
                self.arena[base..base + PAGE_SIZE]
                    .copy_from_slice(&data[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
                self.slots[page.as_u64() as usize] = slot;
            }
        }
        self.resident.set_run(run);
        self.mark_dirty_run(run);
        Ok(())
    }

    /// Bulk install with caller-filled contents: reserves the run's frames,
    /// then hands `fill` one contiguous buffer to populate (e.g. straight
    /// from a file read, skipping the intermediate copy).
    ///
    /// # Errors
    ///
    /// Same as [`install_run`](Self::install_run); nothing is installed on
    /// error and `fill` is not called.
    pub fn install_run_with(
        &mut self,
        run: PageRun,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), MemError> {
        if run.is_empty() {
            return Ok(());
        }
        self.check_installable(run)?;
        // Recycled slots are scattered; the contiguous tail of the arena is
        // the only place a run-sized buffer can live. Prefer it whenever
        // there is no free list to drain (the common, eviction-free case).
        if self.free_slots.is_empty() || run.len == 1 {
            let first_slot = if run.len == 1 {
                self.alloc_slot()
            } else {
                self.alloc_contiguous_slots(run.len)
            };
            let base = first_slot as usize * PAGE_SIZE;
            fill(&mut self.arena[base..base + run.len as usize * PAGE_SIZE]);
            for (i, page) in run.iter().enumerate() {
                self.slots[page.as_u64() as usize] = first_slot + i as u32;
            }
        } else {
            let mut buf = vec![0u8; run.len as usize * PAGE_SIZE];
            fill(&mut buf);
            for (i, page) in run.iter().enumerate() {
                let slot = self.alloc_slot();
                let base = slot as usize * PAGE_SIZE;
                self.arena[base..base + PAGE_SIZE]
                    .copy_from_slice(&buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
                self.slots[page.as_u64() as usize] = slot;
            }
        }
        self.resident.set_run(run);
        self.mark_dirty_run(run);
        Ok(())
    }

    /// Bulk install of *several* disjoint runs in one operation: reserves
    /// frames for every run up front, then hands `fill` one
    /// `(run index, buffer)` pair per run — all buffers alive at once, so
    /// the caller may populate them from parallel prefetch lanes (scoped
    /// threads copying straight from file bytes into the frames; the
    /// single-copy heart of the lane pipeline).
    ///
    /// Buffers start zeroed; a pair `fill` leaves untouched installs as a
    /// zero run. Frames are always reserved at the arena tail (the free
    /// list, if any, is left for later single-run installs).
    ///
    /// Nothing is installed unless *every* run is installable.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyResident`] names the first mapped page of the
    /// first offending run; [`MemError::OutOfBounds`] if any run leaves
    /// the region. On error `fill` is not called.
    ///
    /// # Panics
    ///
    /// Panics if the runs overlap each other — residency checks cannot
    /// catch a run colliding with a not-yet-installed sibling, so this is
    /// a caller contract (REAP's v2 WS format already rejects overlapping
    /// extents at parse time).
    pub fn install_runs_with(
        &mut self,
        runs: &[PageRun],
        fill: impl FnOnce(Vec<(usize, &mut [u8])>),
    ) -> Result<(), MemError> {
        let mut total: u64 = 0;
        for &run in runs {
            if run.is_empty() {
                continue;
            }
            self.check_installable(run)?;
            total += run.len;
        }
        let mut sorted: Vec<PageRun> = runs.iter().copied().filter(|r| !r.is_empty()).collect();
        sorted.sort_by_key(|r| r.first);
        for pair in sorted.windows(2) {
            assert!(
                pair[0].end() <= pair[1].first,
                "install_runs_with requires disjoint runs ({} overlaps {})",
                pair[0],
                pair[1]
            );
        }
        if total == 0 {
            fill(Vec::new());
            return Ok(());
        }
        let first_slot = self.alloc_contiguous_slots(total);
        {
            let base = first_slot as usize * PAGE_SIZE;
            let mut rest = &mut self.arena[base..base + total as usize * PAGE_SIZE];
            let mut bufs = Vec::with_capacity(runs.len());
            for (i, &run) in runs.iter().enumerate() {
                if run.is_empty() {
                    continue;
                }
                let (head, tail) = rest.split_at_mut(run.byte_len() as usize);
                rest = tail;
                bufs.push((i, head));
            }
            fill(bufs);
        }
        let mut slot = first_slot;
        for &run in runs {
            if run.is_empty() {
                continue;
            }
            for page in run.iter() {
                self.slots[page.as_u64() as usize] = slot;
                slot += 1;
            }
            self.resident.set_run(run);
            self.mark_dirty_run(run);
        }
        Ok(())
    }

    /// Zero-copy alias install: maps `run.len` pages straight onto the
    /// refcounted buffer `src` starting at byte
    /// `src_page_offset * PAGE_SIZE`, without copying a single frame byte.
    /// The pages become resident (and dirty, if tracking — exactly like
    /// [`install_run`](Self::install_run)); a later guest write breaks
    /// copy-on-write for just the written page. This is how repeat cold
    /// starts share one cached snapshot extent across instances and
    /// shards.
    ///
    /// Nothing is installed unless the *entire* run is installable.
    ///
    /// # Errors
    ///
    /// Same as [`install_run`](Self::install_run).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not cover the aliased range.
    pub fn alias_run(
        &mut self,
        run: PageRun,
        src: &FrameBytes,
        src_page_offset: u64,
    ) -> Result<(), MemError> {
        assert!(
            (src_page_offset + run.len) as usize * PAGE_SIZE <= src.len(),
            "alias_run source buffer too short for {run}"
        );
        if run.is_empty() {
            return Ok(());
        }
        self.check_installable(run)?;
        for (i, page) in run.iter().enumerate() {
            let entry = self.alloc_shared(src, (src_page_offset + i as u64) as u32);
            self.slots[page.as_u64() as usize] = SHARED_BIT | entry;
        }
        self.resident.set_run(run);
        self.mark_dirty_run(run);
        Ok(())
    }

    /// Number of resident pages currently backed by shared (aliased)
    /// frames rather than private arena bytes.
    pub fn aliased_pages(&self) -> u64 {
        self.shared.iter().filter(|e| e.is_some()).count() as u64
    }

    /// The refcounted buffer `page` currently aliases, if it is backed by
    /// a shared frame (`None` for non-resident or private pages). Lets
    /// dedup tests and benches observe that instances of *different*
    /// functions cloned from one runtime image really share a single
    /// allocation — and that a cache eviction leaves the alias intact.
    pub fn aliased_source(&self, page: PageIdx) -> Option<FrameBytes> {
        if !self.resident.get(page) {
            return None;
        }
        let slot = self.slots[page.as_u64() as usize];
        if slot & SHARED_BIT == 0 {
            return None;
        }
        self.shared[(slot & !SHARED_BIT) as usize]
            .as_ref()
            .map(|(src, _)| src.clone())
    }

    /// Installs a run of zero pages (`UFFDIO_ZEROPAGE` over a range).
    ///
    /// # Errors
    ///
    /// Same as [`install_run`](Self::install_run).
    pub fn install_zero_run(&mut self, run: PageRun) -> Result<(), MemError> {
        if run.is_empty() {
            return Ok(());
        }
        self.check_installable(run)?;
        if self.free_slots.is_empty() {
            // `resize`'s zero-fill *is* the page contents here.
            let first_slot = self.alloc_contiguous_slots(run.len);
            for (i, page) in run.iter().enumerate() {
                self.slots[page.as_u64() as usize] = first_slot + i as u32;
            }
        } else {
            for page in run.iter() {
                let slot = self.alloc_slot();
                let base = slot as usize * PAGE_SIZE;
                self.arena[base..base + PAGE_SIZE].fill(0);
                self.slots[page.as_u64() as usize] = slot;
            }
        }
        self.resident.set_run(run);
        self.mark_dirty_run(run);
        Ok(())
    }

    /// Returns the instance's frames to the pool: every page becomes
    /// non-resident and the arena's allocation is retained for the next
    /// tenant — the memory-pool reuse a warm orchestrator applies between
    /// restores so each instance does not re-fault its arena in from the
    /// OS. Dirty state and tracking are reset too.
    pub fn recycle(&mut self) {
        self.slots.fill(NO_SLOT);
        self.arena.clear();
        self.free_slots.clear();
        self.shared.clear();
        self.free_shared.clear();
        self.resident.clear_all();
        self.dirty.clear_all();
        self.dirty_tracking = false;
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotResident`] naming the *first* missing page —
    /// the fault the VM would take — or [`MemError::OutOfBounds`].
    pub fn read(&self, addr: GuestAddr, len: u64) -> Result<Vec<u8>, MemError> {
        self.check_range(addr, len)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = cur.page();
            let frame = self.frame(page).ok_or(MemError::NotResident(page))?;
            let off = cur.page_offset();
            let take = ((PAGE_SIZE - off) as u64).min(remaining) as usize;
            out.extend_from_slice(&frame[off..off + take]);
            cur = cur.add(take as u64);
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Copies a whole resident run into `buf` (one bounds check; per-page
    /// copies only when frames are scattered by eviction).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotResident`] for the first missing page or
    /// [`MemError::OutOfBounds`].
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly `run.len` pages.
    pub fn read_run_into(&self, run: PageRun, buf: &mut [u8]) -> Result<(), MemError> {
        assert_eq!(buf.len() as u64, run.byte_len(), "buffer must match run");
        if !self.contains_run(run) {
            return Err(MemError::OutOfBounds(run.first.base_addr()));
        }
        if !self.resident.all_set_in(run) {
            let missing = run
                .iter()
                .find(|&p| !self.resident.get(p))
                .expect("some page is missing");
            return Err(MemError::NotResident(missing));
        }
        for (i, page) in run.iter().enumerate() {
            let frame = self.frame(page).expect("residency checked");
            buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].copy_from_slice(frame);
        }
        Ok(())
    }

    /// Writes `bytes` at `addr` (pages must be resident: real hardware
    /// faults on write to an unmapped page just like on read).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotResident`] for the first missing page or
    /// [`MemError::OutOfBounds`].
    pub fn write(&mut self, addr: GuestAddr, bytes: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        // Verify residency of the whole range first so a failed write does
        // not partially apply.
        let span = crate::page::pages_covering(addr, bytes.len() as u64)
            .last()
            .map(|last| {
                PageRun::new(addr.page(), last.as_u64() - addr.page().as_u64() + 1)
            })
            .expect("non-empty write covers pages");
        if !self.resident.all_set_in(span) {
            let missing = span
                .iter()
                .find(|&p| !self.resident.get(p))
                .expect("some page is missing");
            return Err(MemError::NotResident(missing));
        }
        let mut cur = addr;
        let mut written = 0usize;
        while written < bytes.len() {
            let page = cur.page();
            let off = cur.page_offset();
            let take = (PAGE_SIZE - off).min(bytes.len() - written);
            let frame = self.frame_mut(page).expect("residency checked above");
            frame[off..off + take].copy_from_slice(&bytes[written..written + take]);
            cur = cur.add(take as u64);
            written += take;
        }
        self.mark_dirty_run(span);
        Ok(())
    }

    /// Borrow of a resident page's bytes.
    pub fn page_bytes(&self, page: PageIdx) -> Option<&[u8]> {
        self.frame(page)
    }

    /// FNV-1a fingerprint of a resident page.
    pub fn page_checksum(&self, page: PageIdx) -> Option<u64> {
        self.page_bytes(page).map(fnv1a64)
    }

    /// Evicts a page (used when modelling snapshot-time memory release).
    /// Returns true if the page was resident.
    pub fn evict_page(&mut self, page: PageIdx) -> bool {
        if !self.resident.get(page) {
            return false;
        }
        let idx = page.as_u64() as usize;
        let slot = self.slots[idx];
        if slot & SHARED_BIT != 0 {
            // Dropping the alias releases the refcount; no arena slot to
            // recycle.
            let shared_idx = (slot & !SHARED_BIT) as usize;
            self.shared[shared_idx] = None;
            self.free_shared.push(shared_idx as u32);
        } else {
            self.free_slots.push(slot);
        }
        self.slots[idx] = NO_SLOT;
        self.resident.clear(page);
        true
    }

    /// Iterates over resident page indices in ascending order.
    pub fn resident_iter(&self) -> impl Iterator<Item = PageIdx> + '_ {
        self.resident.iter()
    }

    /// Maximal runs of resident pages in ascending order — the shape
    /// snapshot capture and verification iterate by.
    pub fn resident_runs(&self) -> Vec<PageRun> {
        self.resident.runs()
    }

    /// First non-resident page inside `window` at or after `from` together
    /// with the length of the maximal missing run there — the batched
    /// fault-path query.
    pub fn next_missing_run(&self, from: PageIdx, window: PageRun) -> Option<PageRun> {
        self.resident.next_clear_run_in(from, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn fresh_memory_is_empty() {
        let mem = GuestMemory::new(256 * 1024 * 1024);
        assert_eq!(mem.num_pages(), 65536);
        assert_eq!(mem.resident_pages(), 0);
        assert_eq!(mem.footprint_bytes(), 0);
        assert!(!mem.is_resident(PageIdx::new(0)));
    }

    #[test]
    fn size_rounds_up_to_pages() {
        let mem = GuestMemory::new(4097);
        assert_eq!(mem.num_pages(), 2);
        assert_eq!(mem.size_bytes(), 8192);
    }

    #[test]
    fn install_then_read() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(3), &page_of(0xAB)).unwrap();
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(mem.footprint_bytes(), 4096);
        let got = mem.read(PageIdx::new(3).base_addr(), 8).unwrap();
        assert_eq!(got, vec![0xAB; 8]);
    }

    #[test]
    fn double_install_is_eexist() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(1)).unwrap();
        assert_eq!(
            mem.install_page(PageIdx::new(0), &page_of(2)),
            Err(MemError::AlreadyResident(PageIdx::new(0)))
        );
        // Original contents preserved.
        assert_eq!(mem.read(GuestAddr::new(0), 1).unwrap(), vec![1]);
    }

    #[test]
    fn read_unmapped_reports_first_missing_page() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(9)).unwrap();
        // Crossing from resident page 0 into missing page 1.
        let err = mem.read(GuestAddr::new(4090), 10).unwrap_err();
        assert_eq!(err, MemError::NotResident(PageIdx::new(1)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mem = GuestMemory::new(2 * 4096);
        let err = mem.read(GuestAddr::new(2 * 4096 - 1), 2).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
        assert!(!mem.contains_page(PageIdx::new(2)));
        assert!(mem.contains_page(PageIdx::new(1)));
    }

    #[test]
    fn install_out_of_bounds() {
        let mut mem = GuestMemory::new(4096);
        let err = mem.install_page(PageIdx::new(5), &page_of(0)).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    fn write_spanning_pages() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0)).unwrap();
        mem.install_page(PageIdx::new(1), &page_of(0)).unwrap();
        let data: Vec<u8> = (0..100).collect();
        mem.write(GuestAddr::new(4050), &data).unwrap();
        assert_eq!(mem.read(GuestAddr::new(4050), 100).unwrap(), data);
    }

    #[test]
    fn failed_write_does_not_partially_apply() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0x11)).unwrap();
        // Page 1 missing: write spanning 0->1 must fail and leave page 0
        // untouched.
        let err = mem.write(GuestAddr::new(4000), &[0xFF; 200]).unwrap_err();
        assert_eq!(err, MemError::NotResident(PageIdx::new(1)));
        assert_eq!(mem.read(GuestAddr::new(4000), 8).unwrap(), vec![0x11; 8]);
    }

    #[test]
    fn zero_page_and_checksum() {
        let mut mem = GuestMemory::new(2 * 4096);
        mem.install_zero_page(PageIdx::new(1)).unwrap();
        assert_eq!(mem.read(GuestAddr::new(4096), 3).unwrap(), vec![0, 0, 0]);
        let zeros = mem.page_checksum(PageIdx::new(1)).unwrap();
        assert_eq!(zeros, fnv1a64(&[0u8; PAGE_SIZE]));
        assert_eq!(mem.page_checksum(PageIdx::new(0)), None);
    }

    #[test]
    fn evict_and_resident_iter() {
        let mut mem = GuestMemory::new(8 * 4096);
        for i in [1u64, 4, 6] {
            mem.install_page(PageIdx::new(i), &page_of(i as u8)).unwrap();
        }
        let resident: Vec<u64> = mem.resident_iter().map(|p| p.as_u64()).collect();
        assert_eq!(resident, vec![1, 4, 6]);
        assert!(mem.evict_page(PageIdx::new(4)));
        assert!(!mem.evict_page(PageIdx::new(4)));
        assert_eq!(mem.resident_pages(), 2);
        assert!(!mem.evict_page(PageIdx::new(100)), "oob evict is a no-op");
    }

    #[test]
    fn evicted_slot_is_recycled() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(1)).unwrap();
        mem.install_page(PageIdx::new(1), &page_of(2)).unwrap();
        let arena_before = mem.arena.len();
        assert!(mem.evict_page(PageIdx::new(0)));
        mem.install_page(PageIdx::new(5), &page_of(9)).unwrap();
        assert_eq!(mem.arena.len(), arena_before, "evicted frame reused");
        assert_eq!(mem.read(PageIdx::new(5).base_addr(), 1).unwrap(), vec![9]);
        assert_eq!(mem.read(PageIdx::new(1).base_addr(), 1).unwrap(), vec![2]);
    }

    #[test]
    fn install_run_bulk_and_eexist() {
        let mut mem = GuestMemory::new(16 * 4096);
        let data: Vec<u8> = (0..4 * PAGE_SIZE).map(|i| (i / PAGE_SIZE) as u8).collect();
        mem.install_run(PageRun::new(PageIdx::new(2), 4), &data).unwrap();
        assert_eq!(mem.resident_pages(), 4);
        for i in 0..4u64 {
            assert_eq!(
                mem.read(PageIdx::new(2 + i).base_addr(), 1).unwrap(),
                vec![i as u8]
            );
        }
        // Overlapping run fails atomically, naming the first taken page.
        let err = mem
            .install_run(PageRun::new(PageIdx::new(4), 4), &data)
            .unwrap_err();
        assert_eq!(err, MemError::AlreadyResident(PageIdx::new(4)));
        assert_eq!(mem.resident_pages(), 4, "nothing installed on error");
        // Out-of-bounds run fails before filling.
        let err = mem
            .install_run(PageRun::new(PageIdx::new(14), 4), &data)
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
        // Empty run is a no-op.
        mem.install_run(PageRun::new(PageIdx::new(0), 0), &[]).unwrap();
    }

    #[test]
    fn install_run_with_fills_in_place() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_run_with(PageRun::new(PageIdx::new(1), 3), |buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i / PAGE_SIZE + 1) as u8;
            }
        })
        .unwrap();
        assert_eq!(mem.read(PageIdx::new(2).base_addr(), 2).unwrap(), vec![2, 2]);
        assert_eq!(mem.resident_pages(), 3);
    }

    #[test]
    fn install_run_with_scattered_free_slots() {
        // Force the free-list fallback: evict then bulk-install.
        let mut mem = GuestMemory::new(16 * 4096);
        for i in 0..4u64 {
            mem.install_page(PageIdx::new(i), &page_of(i as u8)).unwrap();
        }
        mem.evict_page(PageIdx::new(1));
        mem.evict_page(PageIdx::new(3));
        mem.install_run_with(PageRun::new(PageIdx::new(8), 4), |buf| {
            buf.fill(0x7E);
        })
        .unwrap();
        for i in 8..12u64 {
            assert_eq!(
                mem.read(PageIdx::new(i).base_addr(), 1).unwrap(),
                vec![0x7E],
                "page {i}"
            );
        }
        // Untouched survivors keep their contents.
        assert_eq!(mem.read(PageIdx::new(2).base_addr(), 1).unwrap(), vec![2]);
    }

    #[test]
    fn install_runs_with_reserves_all_then_fills() {
        let mut mem = GuestMemory::new(32 * 4096);
        let runs = [
            PageRun::new(PageIdx::new(8), 3),
            PageRun::new(PageIdx::new(0), 2),
            PageRun::new(PageIdx::new(20), 1),
        ];
        mem.install_runs_with(&runs, |bufs| {
            assert_eq!(bufs.len(), 3);
            for (i, buf) in bufs {
                assert_eq!(buf.len() as u64, runs[i].byte_len());
                assert!(buf.iter().all(|&b| b == 0), "buffers start zeroed");
                buf.fill(i as u8 + 1);
            }
        })
        .unwrap();
        assert_eq!(mem.resident_pages(), 6);
        assert_eq!(mem.read(PageIdx::new(9).base_addr(), 1).unwrap(), vec![1]);
        assert_eq!(mem.read(PageIdx::new(1).base_addr(), 1).unwrap(), vec![2]);
        assert_eq!(mem.read(PageIdx::new(20).base_addr(), 1).unwrap(), vec![3]);
        // Empty runs are skipped; an empty batch is a no-op.
        mem.install_runs_with(&[PageRun::new(PageIdx::new(5), 0)], |bufs| {
            assert!(bufs.is_empty());
        })
        .unwrap();
        mem.install_runs_with(&[], |_| {}).unwrap();
    }

    #[test]
    fn install_runs_with_is_atomic_on_error() {
        let mut mem = GuestMemory::new(16 * 4096);
        mem.install_page(PageIdx::new(5), &page_of(9)).unwrap();
        // Second run collides with resident page 5: nothing installed,
        // fill never called.
        let err = mem
            .install_runs_with(
                &[PageRun::new(PageIdx::new(0), 2), PageRun::new(PageIdx::new(4), 3)],
                |_| panic!("fill must not run"),
            )
            .unwrap_err();
        assert_eq!(err, MemError::AlreadyResident(PageIdx::new(5)));
        assert_eq!(mem.resident_pages(), 1);
        // Out-of-bounds run detected up front too.
        let err = mem
            .install_runs_with(&[PageRun::new(PageIdx::new(14), 4)], |_| {
                panic!("fill must not run")
            })
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    #[should_panic(expected = "disjoint runs")]
    fn install_runs_with_rejects_overlap() {
        let mut mem = GuestMemory::new(16 * 4096);
        let _ = mem.install_runs_with(
            &[PageRun::new(PageIdx::new(0), 4), PageRun::new(PageIdx::new(2), 2)],
            |_| {},
        );
    }

    #[test]
    fn install_zero_run_and_read_run_into() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_zero_run(PageRun::new(PageIdx::new(2), 3)).unwrap();
        let mut buf = vec![0xFFu8; 3 * PAGE_SIZE];
        mem.read_run_into(PageRun::new(PageIdx::new(2), 3), &mut buf)
            .unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // Missing page named on partial runs.
        let err = mem
            .read_run_into(PageRun::new(PageIdx::new(4), 2), &mut buf[..2 * PAGE_SIZE])
            .unwrap_err();
        assert_eq!(err, MemError::NotResident(PageIdx::new(5)));
        let err = mem
            .read_run_into(PageRun::new(PageIdx::new(7), 2), &mut buf[..2 * PAGE_SIZE])
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    fn resident_runs_and_missing_runs() {
        let mut mem = GuestMemory::new(16 * 4096);
        mem.install_zero_run(PageRun::new(PageIdx::new(0), 2)).unwrap();
        mem.install_zero_run(PageRun::new(PageIdx::new(5), 3)).unwrap();
        assert_eq!(
            mem.resident_runs(),
            vec![
                PageRun::new(PageIdx::new(0), 2),
                PageRun::new(PageIdx::new(5), 3)
            ]
        );
        let window = PageRun::new(PageIdx::new(0), 16);
        assert_eq!(
            mem.next_missing_run(PageIdx::new(0), window),
            Some(PageRun::new(PageIdx::new(2), 3))
        );
        assert_eq!(
            mem.next_missing_run(PageIdx::new(5), window),
            Some(PageRun::new(PageIdx::new(8), 8))
        );
        assert!(mem.is_run_resident(PageRun::new(PageIdx::new(5), 3)));
        assert!(!mem.is_run_resident(PageRun::new(PageIdx::new(4), 2)));
    }

    #[test]
    fn dirty_tracking_records_installs_and_writes() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(1)).unwrap();
        assert_eq!(mem.dirty_count(), 0, "tracking off by default");
        mem.set_dirty_tracking(true);
        assert!(mem.dirty_tracking());
        mem.install_page(PageIdx::new(2), &page_of(2)).unwrap();
        mem.write(GuestAddr::new(5), &[9, 9]).unwrap(); // page 0
        let dirty: Vec<u64> = mem.dirty_pages().map(|p| p.as_u64()).collect();
        assert_eq!(dirty, vec![0, 2]);
        mem.clear_dirty();
        assert_eq!(mem.dirty_count(), 0);
        // Writes after clearing are tracked afresh.
        mem.write(GuestAddr::new(2 * 4096), &[1]).unwrap();
        assert_eq!(mem.dirty_count(), 1);
    }

    #[test]
    fn dirty_tracking_spanning_write_marks_all_pages() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0)).unwrap();
        mem.install_page(PageIdx::new(1), &page_of(0)).unwrap();
        mem.set_dirty_tracking(true);
        mem.write(GuestAddr::new(4090), &[7u8; 20]).unwrap();
        let dirty: Vec<u64> = mem.dirty_pages().map(|p| p.as_u64()).collect();
        assert_eq!(dirty, vec![0, 1]);
        assert_eq!(mem.dirty_runs(), vec![PageRun::new(PageIdx::new(0), 2)]);
    }

    fn shared_buf(pages: usize, byte: u8) -> FrameBytes {
        Arc::new(vec![byte; pages * PAGE_SIZE])
    }

    #[test]
    fn alias_run_shares_without_copying() {
        let mut mem = GuestMemory::new(16 * 4096);
        let src = shared_buf(4, 0xA5);
        mem.alias_run(PageRun::new(PageIdx::new(3), 4), &src, 0).unwrap();
        assert_eq!(mem.resident_pages(), 4);
        assert_eq!(mem.aliased_pages(), 4);
        assert_eq!(mem.arena.len(), 0, "no private frame bytes allocated");
        assert_eq!(Arc::strong_count(&src), 5, "one refcount per aliased page");
        assert_eq!(mem.read(PageIdx::new(4).base_addr(), 2).unwrap(), vec![0xA5, 0xA5]);
        // Aliased pages behave as resident everywhere.
        assert!(mem.is_run_resident(PageRun::new(PageIdx::new(3), 4)));
        assert_eq!(
            mem.page_checksum(PageIdx::new(3)),
            Some(fnv1a64(&[0xA5u8; PAGE_SIZE]))
        );
    }

    #[test]
    fn alias_run_with_page_offset_maps_the_right_bytes() {
        let mut mem = GuestMemory::new(16 * 4096);
        let mut bytes = vec![0u8; 3 * PAGE_SIZE];
        for (i, chunk) in bytes.chunks_mut(PAGE_SIZE).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        let src = Arc::new(bytes);
        mem.alias_run(PageRun::new(PageIdx::new(8), 2), &src, 1).unwrap();
        assert_eq!(mem.read(PageIdx::new(8).base_addr(), 1).unwrap(), vec![2]);
        assert_eq!(mem.read(PageIdx::new(9).base_addr(), 1).unwrap(), vec![3]);
    }

    #[test]
    fn alias_run_errors_match_install_run() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(4, 1);
        mem.install_page(PageIdx::new(2), &page_of(9)).unwrap();
        let err = mem.alias_run(PageRun::new(PageIdx::new(1), 3), &src, 0).unwrap_err();
        assert_eq!(err, MemError::AlreadyResident(PageIdx::new(2)));
        assert_eq!(mem.aliased_pages(), 0, "nothing aliased on error");
        let err = mem.alias_run(PageRun::new(PageIdx::new(6), 4), &src, 0).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
        // Empty run is a no-op.
        mem.alias_run(PageRun::new(PageIdx::new(0), 0), &src, 0).unwrap();
    }

    #[test]
    #[should_panic(expected = "source buffer too short")]
    fn alias_run_rejects_short_source() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(2, 0);
        let _ = mem.alias_run(PageRun::new(PageIdx::new(0), 3), &src, 0);
    }

    #[test]
    fn write_to_alias_breaks_cow_privately() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(3, 0x11);
        mem.alias_run(PageRun::new(PageIdx::new(0), 3), &src, 0).unwrap();
        mem.set_dirty_tracking(true);
        mem.write(PageIdx::new(1).base_addr().add(5), &[0xFF, 0xFE]).unwrap();
        // Only the written page went private; the source is untouched.
        assert_eq!(mem.aliased_pages(), 2);
        assert_eq!(Arc::strong_count(&src), 3);
        assert!(src.iter().all(|&b| b == 0x11), "shared source never mutated");
        let got = mem.read(PageIdx::new(1).base_addr(), 8).unwrap();
        assert_eq!(got, vec![0x11, 0x11, 0x11, 0x11, 0x11, 0xFF, 0xFE, 0x11]);
        // Dirty semantics identical to a private-frame write.
        let dirty: Vec<u64> = mem.dirty_pages().map(|p| p.as_u64()).collect();
        assert_eq!(dirty, vec![1]);
        // Neighbouring aliases still serve the shared bytes.
        assert_eq!(mem.read(PageIdx::new(2).base_addr(), 1).unwrap(), vec![0x11]);
        // Exactly one CoW break was counted; reads break nothing.
        assert_eq!(mem.cow_breaks(), 1);
        let _ = mem.read(PageIdx::new(0).base_addr(), 2).unwrap();
        assert_eq!(mem.cow_breaks(), 1);
    }

    #[test]
    fn evict_and_recycle_release_aliases() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(2, 7);
        mem.alias_run(PageRun::new(PageIdx::new(0), 2), &src, 0).unwrap();
        assert!(mem.evict_page(PageIdx::new(0)));
        assert_eq!(Arc::strong_count(&src), 2);
        assert_eq!(mem.aliased_pages(), 1);
        // The freed shared entry is reused by the next alias.
        mem.alias_run(PageRun::new(PageIdx::new(4), 1), &src, 1).unwrap();
        assert_eq!(mem.shared.len(), 2, "freed entry reused, table did not grow");
        mem.recycle();
        assert_eq!(Arc::strong_count(&src), 1, "recycle drops every alias");
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_run_into_spans_aliased_and_private_frames() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(1, 0xAA);
        mem.install_page(PageIdx::new(0), &page_of(0xBB)).unwrap();
        mem.alias_run(PageRun::new(PageIdx::new(1), 1), &src, 0).unwrap();
        let mut buf = vec![0u8; 2 * PAGE_SIZE];
        mem.read_run_into(PageRun::new(PageIdx::new(0), 2), &mut buf).unwrap();
        assert!(buf[..PAGE_SIZE].iter().all(|&b| b == 0xBB));
        assert!(buf[PAGE_SIZE..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn cloned_memory_shares_aliases_then_diverges_on_write() {
        let mut mem = GuestMemory::new(8 * 4096);
        let src = shared_buf(2, 3);
        mem.alias_run(PageRun::new(PageIdx::new(0), 2), &src, 0).unwrap();
        let mut twin = mem.clone();
        assert_eq!(Arc::strong_count(&src), 5, "clone bumps refcounts only");
        twin.write(PageIdx::new(0).base_addr(), &[9]).unwrap();
        assert_eq!(mem.read(PageIdx::new(0).base_addr(), 1).unwrap(), vec![3]);
        assert_eq!(twin.read(PageIdx::new(0).base_addr(), 1).unwrap(), vec![9]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            MemError::NotResident(PageIdx::new(3)).to_string(),
            "page pfn:3 is not resident"
        );
        assert_eq!(
            MemError::AlreadyResident(PageIdx::new(1)).to_string(),
            "page pfn:1 is already resident"
        );
        assert!(MemError::OutOfBounds(GuestAddr::new(16))
            .to_string()
            .contains("out of bounds"));
    }
}
