//! Sparse guest physical memory.
//!
//! Frames are allocated on install, so a freshly "restored" VM occupies no
//! memory until pages are faulted or prefetched in — exactly the property
//! the paper measures in Fig 4 (snapshot-restored instances touch 8–99 MB
//! of their 256 MB guest memory).

use std::fmt;

use crate::checksum::fnv1a64;
use crate::page::{GuestAddr, PageIdx, PAGE_SIZE};

/// Errors raised by guest memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access touched a page that is not resident (would page-fault).
    NotResident(PageIdx),
    /// Access fell outside the guest memory region.
    OutOfBounds(GuestAddr),
    /// `UFFDIO_COPY` target page is already mapped (kernel returns EEXIST).
    AlreadyResident(PageIdx),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotResident(p) => write!(f, "page {p} is not resident"),
            MemError::OutOfBounds(a) => write!(f, "address {a} is out of bounds"),
            MemError::AlreadyResident(p) => write!(f, "page {p} is already resident"),
        }
    }
}

impl std::error::Error for MemError {}

/// Guest physical memory: a fixed-size region of lazily-populated 4 KB
/// frames, with KVM-style dirty-page tracking (the mechanism behind
/// Firecracker's *diff snapshots*).
///
/// # Example
///
/// ```
/// use guest_mem::{GuestAddr, GuestMemory, MemError, PageIdx};
///
/// let mut mem = GuestMemory::new(16 * 4096);
/// assert_eq!(
///     mem.read(GuestAddr::new(0), 4).unwrap_err(),
///     MemError::NotResident(PageIdx::new(0))
/// );
/// mem.install_page(PageIdx::new(0), &[7u8; 4096]).unwrap();
/// assert_eq!(mem.read(GuestAddr::new(0), 2).unwrap(), vec![7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct GuestMemory {
    frames: Vec<Option<Box<[u8]>>>,
    resident: usize,
    /// Pages written since the last [`clear_dirty`](Self::clear_dirty)
    /// (installs count as writes, as KVM's dirty log sees them).
    dirty: std::collections::BTreeSet<u64>,
    dirty_tracking: bool,
}

impl GuestMemory {
    /// Creates a region of `bytes` (rounded up to whole pages), fully
    /// non-resident.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes > 0, "guest memory must be non-empty");
        let pages = bytes.div_ceil(PAGE_SIZE as u64) as usize;
        GuestMemory {
            frames: (0..pages).map(|_| None).collect(),
            resident: 0,
            dirty: std::collections::BTreeSet::new(),
            dirty_tracking: false,
        }
    }

    /// Enables KVM-style dirty logging: subsequent installs and writes are
    /// recorded until [`clear_dirty`](Self::clear_dirty).
    pub fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_tracking = enabled;
    }

    /// True if dirty logging is on.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_tracking
    }

    /// Pages dirtied since tracking was last cleared, ascending.
    pub fn dirty_pages(&self) -> impl Iterator<Item = PageIdx> + '_ {
        self.dirty.iter().map(|&p| PageIdx::new(p))
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> u64 {
        self.dirty.len() as u64
    }

    /// Clears the dirty log (after capturing a diff snapshot).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    fn mark_dirty(&mut self, page: PageIdx) {
        if self.dirty_tracking {
            self.dirty.insert(page.as_u64());
        }
    }

    /// Region size in pages.
    pub fn num_pages(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages() * PAGE_SIZE as u64
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident as u64
    }

    /// Resident set size in bytes — the `ps`-style footprint the paper
    /// reports in Fig 4.
    pub fn footprint_bytes(&self) -> u64 {
        self.resident as u64 * PAGE_SIZE as u64
    }

    /// True if `page` is resident.
    pub fn is_resident(&self, page: PageIdx) -> bool {
        self.frames
            .get(page.as_u64() as usize)
            .map(|f| f.is_some())
            .unwrap_or(false)
    }

    /// True if `page` lies within the region.
    pub fn contains_page(&self, page: PageIdx) -> bool {
        (page.as_u64() as usize) < self.frames.len()
    }

    fn check_range(&self, addr: GuestAddr, len: u64) -> Result<(), MemError> {
        if addr.as_u64() + len > self.size_bytes() {
            return Err(MemError::OutOfBounds(addr));
        }
        Ok(())
    }

    /// Installs page contents (the `UFFDIO_COPY` destination operation).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyResident`] if the page is mapped (kernel
    /// EEXIST) and [`MemError::OutOfBounds`] if outside the region.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page.
    pub fn install_page(&mut self, page: PageIdx, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(data.len(), PAGE_SIZE, "install needs exactly one page");
        let idx = page.as_u64() as usize;
        if idx >= self.frames.len() {
            return Err(MemError::OutOfBounds(page.base_addr()));
        }
        if self.frames[idx].is_some() {
            return Err(MemError::AlreadyResident(page));
        }
        self.frames[idx] = Some(data.to_vec().into_boxed_slice());
        self.resident += 1;
        self.mark_dirty(page);
        Ok(())
    }

    /// Installs a zero page (`UFFDIO_ZEROPAGE`).
    ///
    /// # Errors
    ///
    /// Same as [`install_page`](Self::install_page).
    pub fn install_zero_page(&mut self, page: PageIdx) -> Result<(), MemError> {
        self.install_page(page, &[0u8; PAGE_SIZE])
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotResident`] naming the *first* missing page —
    /// the fault the VM would take — or [`MemError::OutOfBounds`].
    pub fn read(&self, addr: GuestAddr, len: u64) -> Result<Vec<u8>, MemError> {
        self.check_range(addr, len)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = cur.page();
            let frame = self.frames[page.as_u64() as usize]
                .as_ref()
                .ok_or(MemError::NotResident(page))?;
            let off = cur.page_offset();
            let take = ((PAGE_SIZE - off) as u64).min(remaining) as usize;
            out.extend_from_slice(&frame[off..off + take]);
            cur = cur.add(take as u64);
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Writes `bytes` at `addr` (pages must be resident: real hardware
    /// faults on write to an unmapped page just like on read).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotResident`] for the first missing page or
    /// [`MemError::OutOfBounds`].
    pub fn write(&mut self, addr: GuestAddr, bytes: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, bytes.len() as u64)?;
        // Verify residency of the whole range first so a failed write does
        // not partially apply.
        let mut cur = addr;
        let mut remaining = bytes.len() as u64;
        while remaining > 0 {
            let page = cur.page();
            if !self.is_resident(page) {
                return Err(MemError::NotResident(page));
            }
            let take = ((PAGE_SIZE - cur.page_offset()) as u64).min(remaining);
            cur = cur.add(take);
            remaining -= take;
        }
        let mut cur = addr;
        let mut written = 0usize;
        while written < bytes.len() {
            let page = cur.page();
            let off = cur.page_offset();
            let take = (PAGE_SIZE - off).min(bytes.len() - written);
            let frame = self.frames[page.as_u64() as usize]
                .as_mut()
                .expect("residency checked above");
            frame[off..off + take].copy_from_slice(&bytes[written..written + take]);
            cur = cur.add(take as u64);
            written += take;
            self.mark_dirty(page);
        }
        Ok(())
    }

    /// Borrow of a resident page's bytes.
    pub fn page_bytes(&self, page: PageIdx) -> Option<&[u8]> {
        self.frames
            .get(page.as_u64() as usize)
            .and_then(|f| f.as_deref())
    }

    /// FNV-1a fingerprint of a resident page.
    pub fn page_checksum(&self, page: PageIdx) -> Option<u64> {
        self.page_bytes(page).map(fnv1a64)
    }

    /// Evicts a page (used when modelling snapshot-time memory release).
    /// Returns true if the page was resident.
    pub fn evict_page(&mut self, page: PageIdx) -> bool {
        if let Some(slot) = self.frames.get_mut(page.as_u64() as usize) {
            if slot.take().is_some() {
                self.resident -= 1;
                return true;
            }
        }
        false
    }

    /// Iterates over resident page indices in ascending order.
    pub fn resident_iter(&self) -> impl Iterator<Item = PageIdx> + '_ {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(i, _)| PageIdx::new(i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn fresh_memory_is_empty() {
        let mem = GuestMemory::new(256 * 1024 * 1024);
        assert_eq!(mem.num_pages(), 65536);
        assert_eq!(mem.resident_pages(), 0);
        assert_eq!(mem.footprint_bytes(), 0);
        assert!(!mem.is_resident(PageIdx::new(0)));
    }

    #[test]
    fn size_rounds_up_to_pages() {
        let mem = GuestMemory::new(4097);
        assert_eq!(mem.num_pages(), 2);
        assert_eq!(mem.size_bytes(), 8192);
    }

    #[test]
    fn install_then_read() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(3), &page_of(0xAB)).unwrap();
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(mem.footprint_bytes(), 4096);
        let got = mem.read(PageIdx::new(3).base_addr(), 8).unwrap();
        assert_eq!(got, vec![0xAB; 8]);
    }

    #[test]
    fn double_install_is_eexist() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(1)).unwrap();
        assert_eq!(
            mem.install_page(PageIdx::new(0), &page_of(2)),
            Err(MemError::AlreadyResident(PageIdx::new(0)))
        );
        // Original contents preserved.
        assert_eq!(mem.read(GuestAddr::new(0), 1).unwrap(), vec![1]);
    }

    #[test]
    fn read_unmapped_reports_first_missing_page() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(9)).unwrap();
        // Crossing from resident page 0 into missing page 1.
        let err = mem.read(GuestAddr::new(4090), 10).unwrap_err();
        assert_eq!(err, MemError::NotResident(PageIdx::new(1)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mem = GuestMemory::new(2 * 4096);
        let err = mem.read(GuestAddr::new(2 * 4096 - 1), 2).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
        assert!(!mem.contains_page(PageIdx::new(2)));
        assert!(mem.contains_page(PageIdx::new(1)));
    }

    #[test]
    fn install_out_of_bounds() {
        let mut mem = GuestMemory::new(4096);
        let err = mem.install_page(PageIdx::new(5), &page_of(0)).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }

    #[test]
    fn write_spanning_pages() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0)).unwrap();
        mem.install_page(PageIdx::new(1), &page_of(0)).unwrap();
        let data: Vec<u8> = (0..100).collect();
        mem.write(GuestAddr::new(4050), &data).unwrap();
        assert_eq!(mem.read(GuestAddr::new(4050), 100).unwrap(), data);
    }

    #[test]
    fn failed_write_does_not_partially_apply() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0x11)).unwrap();
        // Page 1 missing: write spanning 0->1 must fail and leave page 0
        // untouched.
        let err = mem.write(GuestAddr::new(4000), &[0xFF; 200]).unwrap_err();
        assert_eq!(err, MemError::NotResident(PageIdx::new(1)));
        assert_eq!(mem.read(GuestAddr::new(4000), 8).unwrap(), vec![0x11; 8]);
    }

    #[test]
    fn zero_page_and_checksum() {
        let mut mem = GuestMemory::new(2 * 4096);
        mem.install_zero_page(PageIdx::new(1)).unwrap();
        assert_eq!(mem.read(GuestAddr::new(4096), 3).unwrap(), vec![0, 0, 0]);
        let zeros = mem.page_checksum(PageIdx::new(1)).unwrap();
        assert_eq!(zeros, fnv1a64(&[0u8; PAGE_SIZE]));
        assert_eq!(mem.page_checksum(PageIdx::new(0)), None);
    }

    #[test]
    fn evict_and_resident_iter() {
        let mut mem = GuestMemory::new(8 * 4096);
        for i in [1u64, 4, 6] {
            mem.install_page(PageIdx::new(i), &page_of(i as u8)).unwrap();
        }
        let resident: Vec<u64> = mem.resident_iter().map(|p| p.as_u64()).collect();
        assert_eq!(resident, vec![1, 4, 6]);
        assert!(mem.evict_page(PageIdx::new(4)));
        assert!(!mem.evict_page(PageIdx::new(4)));
        assert_eq!(mem.resident_pages(), 2);
        assert!(!mem.evict_page(PageIdx::new(100)), "oob evict is a no-op");
    }

    #[test]
    fn dirty_tracking_records_installs_and_writes() {
        let mut mem = GuestMemory::new(8 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(1)).unwrap();
        assert_eq!(mem.dirty_count(), 0, "tracking off by default");
        mem.set_dirty_tracking(true);
        assert!(mem.dirty_tracking());
        mem.install_page(PageIdx::new(2), &page_of(2)).unwrap();
        mem.write(GuestAddr::new(5), &[9, 9]).unwrap(); // page 0
        let dirty: Vec<u64> = mem.dirty_pages().map(|p| p.as_u64()).collect();
        assert_eq!(dirty, vec![0, 2]);
        mem.clear_dirty();
        assert_eq!(mem.dirty_count(), 0);
        // Writes after clearing are tracked afresh.
        mem.write(GuestAddr::new(2 * 4096), &[1]).unwrap();
        assert_eq!(mem.dirty_count(), 1);
    }

    #[test]
    fn dirty_tracking_spanning_write_marks_all_pages() {
        let mut mem = GuestMemory::new(4 * 4096);
        mem.install_page(PageIdx::new(0), &page_of(0)).unwrap();
        mem.install_page(PageIdx::new(1), &page_of(0)).unwrap();
        mem.set_dirty_tracking(true);
        mem.write(GuestAddr::new(4090), &[7u8; 20]).unwrap();
        let dirty: Vec<u64> = mem.dirty_pages().map(|p| p.as_u64()).collect();
        assert_eq!(dirty, vec![0, 1]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            MemError::NotResident(PageIdx::new(3)).to_string(),
            "page pfn:3 is not resident"
        );
        assert_eq!(
            MemError::AlreadyResident(PageIdx::new(1)).to_string(),
            "page pfn:1 is already resident"
        );
        assert!(MemError::OutOfBounds(GuestAddr::new(16))
            .to_string()
            .contains("out of bounds"));
    }
}
