//! Run-length page primitives.
//!
//! The paper's central observation (§5.2) is that cold-start cost is set
//! by *per-page* round trips: thousands of userfaultfd faults, installs
//! and file reads that could be one bulk operation each. [`PageRun`] is
//! the vocabulary type for that batching — a contiguous range of guest
//! pages — and [`PageBitmap`] is the word-packed set the memory and fault
//! layers use to find maximal runs without touching per-page structures.

use std::fmt;

use crate::page::{PageIdx, PAGE_SIZE};

/// A contiguous run of guest pages `[first, first + len)`.
///
/// # Example
///
/// ```
/// use guest_mem::{PageIdx, PageRun};
///
/// let run = PageRun::new(PageIdx::new(4), 3);
/// assert_eq!(run.end(), PageIdx::new(7));
/// assert_eq!(run.byte_len(), 3 * 4096);
/// assert!(run.contains(PageIdx::new(6)));
/// assert_eq!(run.iter().count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRun {
    /// First page of the run.
    pub first: PageIdx,
    /// Number of pages.
    pub len: u64,
}

impl PageRun {
    /// Creates a run of `len` pages starting at `first`.
    pub const fn new(first: PageIdx, len: u64) -> Self {
        PageRun { first, len }
    }

    /// A single-page run.
    pub const fn single(page: PageIdx) -> Self {
        PageRun { first: page, len: 1 }
    }

    /// True if the run covers no pages.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// One past the last page.
    pub const fn end(self) -> PageIdx {
        PageIdx::new(self.first.as_u64() + self.len)
    }

    /// Byte offset of the run inside the guest memory file.
    pub const fn file_offset(self) -> u64 {
        self.first.file_offset()
    }

    /// Length of the run in bytes.
    pub const fn byte_len(self) -> u64 {
        self.len * PAGE_SIZE as u64
    }

    /// True if `page` lies inside the run.
    pub const fn contains(self, page: PageIdx) -> bool {
        page.as_u64() >= self.first.as_u64() && page.as_u64() < self.first.as_u64() + self.len
    }

    /// True if `other` directly continues this run (`other.first == end`).
    pub const fn abuts(self, other: PageRun) -> bool {
        self.first.as_u64() + self.len == other.first.as_u64()
    }

    /// Iterates the run's pages in ascending order.
    pub fn iter(self) -> impl Iterator<Item = PageIdx> {
        (self.first.as_u64()..self.first.as_u64() + self.len).map(PageIdx::new)
    }
}

impl fmt::Display for PageRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run:[{}+{}]", self.first.as_u64(), self.len)
    }
}

/// Coalesces pages into maximal runs, merging only *adjacent-in-order*
/// neighbours so the original ordering (e.g. REAP fault order) survives:
/// `[5, 6, 7, 2, 3, 9]` becomes `[5+3, 2+2, 9+1]`.
pub fn coalesce_ordered<I: IntoIterator<Item = PageIdx>>(pages: I) -> Vec<PageRun> {
    let mut runs: Vec<PageRun> = Vec::new();
    for page in pages {
        match runs.last_mut() {
            Some(last) if last.abuts(PageRun::single(page)) => last.len += 1,
            _ => runs.push(PageRun::single(page)),
        }
    }
    runs
}

/// Appends `run` to `runs`, merging with the tail when contiguous — the
/// incremental form of [`coalesce_ordered`] used by trace recording.
pub fn push_coalesced(runs: &mut Vec<PageRun>, run: PageRun) {
    if run.is_empty() {
        return;
    }
    match runs.last_mut() {
        Some(last) if last.abuts(run) => last.len += run.len,
        _ => runs.push(run),
    }
}

const WORD_BITS: u64 = 64;

/// A word-packed page set over a fixed range `[0, pages)`.
///
/// Membership, bulk marking and maximal-run queries are all word-at-a-time;
/// nothing in it allocates per page.
#[derive(Debug, Clone, Default)]
pub struct PageBitmap {
    words: Vec<u64>,
    pages: u64,
    ones: u64,
}

impl PageBitmap {
    /// Creates an empty set over `pages` pages.
    pub fn new(pages: u64) -> Self {
        PageBitmap {
            words: vec![0; pages.div_ceil(WORD_BITS) as usize],
            pages,
            ones: 0,
        }
    }

    /// Number of pages the set ranges over.
    pub fn len(&self) -> u64 {
        self.pages
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Number of member pages.
    pub fn count(&self) -> u64 {
        self.ones
    }

    /// True if `page` is in the set (false when out of range).
    pub fn get(&self, page: PageIdx) -> bool {
        let p = page.as_u64();
        p < self.pages && self.words[(p / WORD_BITS) as usize] & (1 << (p % WORD_BITS)) != 0
    }

    /// Inserts `page`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set(&mut self, page: PageIdx) -> bool {
        let p = page.as_u64();
        assert!(p < self.pages, "page {page} out of bitmap range");
        let word = &mut self.words[(p / WORD_BITS) as usize];
        let bit = 1u64 << (p % WORD_BITS);
        let fresh = *word & bit == 0;
        *word |= bit;
        self.ones += fresh as u64;
        fresh
    }

    /// Removes `page`; returns true if it was present.
    pub fn clear(&mut self, page: PageIdx) -> bool {
        let p = page.as_u64();
        if p >= self.pages {
            return false;
        }
        let word = &mut self.words[(p / WORD_BITS) as usize];
        let bit = 1u64 << (p % WORD_BITS);
        let present = *word & bit != 0;
        *word &= !bit;
        self.ones -= present as u64;
        present
    }

    /// For each word index that `run` touches, the mask of run bits in it.
    fn run_words(run: PageRun) -> impl Iterator<Item = (usize, u64)> {
        let start = run.first.as_u64();
        let end = start + run.len;
        let first_word = start / WORD_BITS;
        let last_word = (end.max(1) - 1) / WORD_BITS;
        (first_word..=last_word).filter_map(move |w| {
            if run.is_empty() {
                return None;
            }
            let word_start = w * WORD_BITS;
            let lo = start.max(word_start) - word_start;
            let hi = end.min(word_start + WORD_BITS) - word_start;
            let mask = if hi - lo == WORD_BITS {
                u64::MAX
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            Some((w as usize, mask))
        })
    }

    /// Inserts every page of `run`; returns how many were newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the range.
    pub fn set_run(&mut self, run: PageRun) -> u64 {
        assert!(
            run.first.as_u64() + run.len <= self.pages,
            "{run} out of bitmap range"
        );
        let mut fresh = 0;
        for (w, mask) in Self::run_words(run) {
            fresh += (mask & !self.words[w]).count_ones() as u64;
            self.words[w] |= mask;
        }
        self.ones += fresh;
        fresh
    }

    /// Removes every page of `run`; returns how many were present.
    pub fn clear_run(&mut self, run: PageRun) -> u64 {
        assert!(
            run.first.as_u64() + run.len <= self.pages,
            "{run} out of bitmap range"
        );
        let mut removed = 0;
        for (w, mask) in Self::run_words(run) {
            removed += (mask & self.words[w]).count_ones() as u64;
            self.words[w] &= !mask;
        }
        self.ones -= removed;
        removed
    }

    /// Empties the set.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// True if every page of `run` is a member.
    pub fn all_set_in(&self, run: PageRun) -> bool {
        run.first.as_u64() + run.len <= self.pages
            && Self::run_words(run).all(|(w, mask)| self.words[w] & mask == mask)
    }

    /// True if any page of `run` is a member.
    pub fn any_set_in(&self, run: PageRun) -> bool {
        assert!(
            run.first.as_u64() + run.len <= self.pages,
            "{run} out of bitmap range"
        );
        Self::run_words(run).any(|(w, mask)| self.words[w] & mask != 0)
    }

    /// First member page at or after `from`, if any.
    pub fn next_set(&self, from: PageIdx) -> Option<PageIdx> {
        self.scan(from.as_u64(), false)
    }

    /// First non-member page at or after `from`, if any.
    pub fn next_clear(&self, from: PageIdx) -> Option<PageIdx> {
        self.scan(from.as_u64(), true)
    }

    fn scan(&self, mut p: u64, want_clear: bool) -> Option<PageIdx> {
        while p < self.pages {
            let w = (p / WORD_BITS) as usize;
            let mut word = if want_clear { !self.words[w] } else { self.words[w] };
            word &= u64::MAX << (p % WORD_BITS);
            if word != 0 {
                let hit = w as u64 * WORD_BITS + word.trailing_zeros() as u64;
                if hit < self.pages {
                    return Some(PageIdx::new(hit));
                }
                return None;
            }
            p = (w as u64 + 1) * WORD_BITS;
        }
        None
    }

    /// The maximal run of *non-member* pages inside `window` starting at
    /// or after `from` — the core query of the batched fault path.
    pub fn next_clear_run_in(&self, from: PageIdx, window: PageRun) -> Option<PageRun> {
        let lo = from.as_u64().max(window.first.as_u64());
        let hi = window.first.as_u64() + window.len;
        let start = self.scan(lo, true)?.as_u64();
        if start >= hi {
            return None;
        }
        let end = self
            .scan(start, false)
            .map(|p| p.as_u64())
            .unwrap_or(self.pages)
            .min(hi);
        Some(PageRun::new(PageIdx::new(start), end - start))
    }

    /// Member pages in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PageIdx> + '_ {
        let mut next = self.next_set(PageIdx::new(0));
        std::iter::from_fn(move || {
            let cur = next?;
            next = self.next_set(cur.next());
            Some(cur)
        })
    }

    /// Maximal member runs in ascending order.
    pub fn runs(&self) -> Vec<PageRun> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        while let Some(start) = self.scan(cursor, false) {
            let end = self
                .scan(start.as_u64(), true)
                .map(|p| p.as_u64())
                .unwrap_or(self.pages);
            out.push(PageRun::new(start, end - start.as_u64()));
            cursor = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_geometry() {
        let r = PageRun::new(PageIdx::new(10), 4);
        assert_eq!(r.end(), PageIdx::new(14));
        assert_eq!(r.file_offset(), 10 * 4096);
        assert_eq!(r.byte_len(), 4 * 4096);
        assert!(r.contains(PageIdx::new(13)));
        assert!(!r.contains(PageIdx::new(14)));
        assert!(!r.is_empty());
        assert!(PageRun::new(PageIdx::new(0), 0).is_empty());
        let pages: Vec<u64> = r.iter().map(|p| p.as_u64()).collect();
        assert_eq!(pages, vec![10, 11, 12, 13]);
        assert_eq!(PageRun::single(PageIdx::new(3)).len, 1);
        assert_eq!(format!("{r}"), "run:[10+4]");
    }

    #[test]
    fn coalesce_merges_adjacent_in_order_only() {
        let pages: Vec<PageIdx> = [5u64, 6, 7, 2, 3, 9, 8]
            .iter()
            .map(|&p| PageIdx::new(p))
            .collect();
        let runs = coalesce_ordered(pages);
        assert_eq!(
            runs,
            vec![
                PageRun::new(PageIdx::new(5), 3),
                PageRun::new(PageIdx::new(2), 2),
                PageRun::new(PageIdx::new(9), 1),
                // 8 comes after 9: descending, not coalescible in order.
                PageRun::new(PageIdx::new(8), 1),
            ]
        );
        assert!(coalesce_ordered(std::iter::empty()).is_empty());
    }

    #[test]
    fn push_coalesced_merges_tail() {
        let mut runs = vec![PageRun::new(PageIdx::new(0), 2)];
        push_coalesced(&mut runs, PageRun::new(PageIdx::new(2), 3));
        assert_eq!(runs, vec![PageRun::new(PageIdx::new(0), 5)]);
        push_coalesced(&mut runs, PageRun::new(PageIdx::new(9), 1));
        assert_eq!(runs.len(), 2);
        push_coalesced(&mut runs, PageRun::new(PageIdx::new(20), 0));
        assert_eq!(runs.len(), 2, "empty runs are dropped");
    }

    #[test]
    fn bitmap_set_get_clear() {
        let mut b = PageBitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(b.set(PageIdx::new(0)));
        assert!(!b.set(PageIdx::new(0)), "double set is not fresh");
        assert!(b.set(PageIdx::new(129)));
        assert_eq!(b.count(), 2);
        assert!(b.get(PageIdx::new(129)));
        assert!(!b.get(PageIdx::new(128)));
        assert!(!b.get(PageIdx::new(500)), "out of range reads false");
        assert!(b.clear(PageIdx::new(0)));
        assert!(!b.clear(PageIdx::new(0)));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn bitmap_run_ops_cross_word_boundaries() {
        let mut b = PageBitmap::new(256);
        let run = PageRun::new(PageIdx::new(60), 10); // spans words 0 and 1
        assert_eq!(b.set_run(run), 10);
        assert_eq!(b.set_run(run), 0, "second set adds nothing");
        assert_eq!(b.count(), 10);
        assert!(b.all_set_in(run));
        assert!(b.any_set_in(PageRun::new(PageIdx::new(0), 64)));
        assert!(!b.all_set_in(PageRun::new(PageIdx::new(59), 2)));
        assert_eq!(b.clear_run(PageRun::new(PageIdx::new(62), 4)), 4);
        assert_eq!(b.count(), 6);
        assert!(!b.get(PageIdx::new(63)));
        assert!(b.get(PageIdx::new(61)));
        assert!(b.get(PageIdx::new(66)));
    }

    #[test]
    fn bitmap_full_word_run() {
        let mut b = PageBitmap::new(192);
        assert_eq!(b.set_run(PageRun::new(PageIdx::new(64), 64)), 64);
        assert!(b.all_set_in(PageRun::new(PageIdx::new(64), 64)));
        assert_eq!(b.count(), 64);
    }

    #[test]
    fn bitmap_scans() {
        let mut b = PageBitmap::new(200);
        b.set_run(PageRun::new(PageIdx::new(10), 5));
        b.set_run(PageRun::new(PageIdx::new(100), 3));
        assert_eq!(b.next_set(PageIdx::new(0)), Some(PageIdx::new(10)));
        assert_eq!(b.next_set(PageIdx::new(15)), Some(PageIdx::new(100)));
        assert_eq!(b.next_set(PageIdx::new(103)), None);
        assert_eq!(b.next_clear(PageIdx::new(10)), Some(PageIdx::new(15)));
        let all: Vec<u64> = b.iter().map(|p| p.as_u64()).collect();
        assert_eq!(all, vec![10, 11, 12, 13, 14, 100, 101, 102]);
        assert_eq!(
            b.runs(),
            vec![
                PageRun::new(PageIdx::new(10), 5),
                PageRun::new(PageIdx::new(100), 3)
            ]
        );
    }

    #[test]
    fn bitmap_clear_run_queries() {
        let mut b = PageBitmap::new(128);
        b.set_run(PageRun::new(PageIdx::new(4), 2));
        let window = PageRun::new(PageIdx::new(0), 10);
        // [0,4) clear, [4,6) set, [6,10) clear.
        assert_eq!(
            b.next_clear_run_in(PageIdx::new(0), window),
            Some(PageRun::new(PageIdx::new(0), 4))
        );
        assert_eq!(
            b.next_clear_run_in(PageIdx::new(4), window),
            Some(PageRun::new(PageIdx::new(6), 4))
        );
        assert_eq!(b.next_clear_run_in(PageIdx::new(10), window), None);
        // Fully-set window has no clear runs.
        b.set_run(window);
        assert_eq!(b.next_clear_run_in(PageIdx::new(0), window), None);
    }

    #[test]
    fn bitmap_tail_word_is_bounded() {
        let mut b = PageBitmap::new(70); // tail word has 6 valid bits
        assert_eq!(b.set_run(PageRun::new(PageIdx::new(64), 6)), 6);
        assert_eq!(b.next_clear(PageIdx::new(64)), None, "tail fully set");
        assert_eq!(b.next_set(PageIdx::new(70)), None);
        let window = PageRun::new(PageIdx::new(0), 70);
        assert_eq!(
            b.next_clear_run_in(PageIdx::new(60), window),
            Some(PageRun::new(PageIdx::new(60), 4))
        );
    }
}
