//! Page-granularity address newtypes.
//!
//! Guest-physical addresses and page indices are distinct types
//! (C-NEWTYPE) so offsets into the guest memory file, page numbers, and
//! byte addresses can never be confused — the exact bug class the paper's
//! "inject the first page fault at the first byte" offset-translation trick
//! (§5.2.1) is prone to.

use std::fmt;

/// Size of one guest page in bytes (x86-64 base pages).
pub const PAGE_SIZE: usize = 4096;

/// Index of a guest-physical page (page frame number).
///
/// # Example
///
/// ```
/// use guest_mem::{GuestAddr, PageIdx};
///
/// let addr = GuestAddr::new(0x2037);
/// assert_eq!(addr.page(), PageIdx::new(2));
/// assert_eq!(addr.page_offset(), 0x37);
/// assert_eq!(PageIdx::new(2).base_addr(), GuestAddr::new(0x2000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageIdx(u64);

impl PageIdx {
    /// Creates a page index.
    pub const fn new(idx: u64) -> Self {
        PageIdx(idx)
    }

    /// Raw index value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// First byte address of this page.
    pub const fn base_addr(self) -> GuestAddr {
        GuestAddr(self.0 * PAGE_SIZE as u64)
    }

    /// Byte offset of this page inside the guest memory file.
    pub const fn file_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }

    /// The next page.
    pub const fn next(self) -> PageIdx {
        PageIdx(self.0 + 1)
    }

    /// `self + n` pages.
    pub const fn add(self, n: u64) -> PageIdx {
        PageIdx(self.0 + n)
    }
}

impl fmt::Display for PageIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{}", self.0)
    }
}

impl From<PageIdx> for u64 {
    fn from(p: PageIdx) -> u64 {
        p.0
    }
}

/// A guest-physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GuestAddr(u64);

impl GuestAddr {
    /// Creates an address.
    pub const fn new(addr: u64) -> Self {
        GuestAddr(addr)
    }

    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Page containing this address.
    pub const fn page(self) -> PageIdx {
        PageIdx(self.0 / PAGE_SIZE as u64)
    }

    /// Offset of this address within its page.
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// `self + n` bytes.
    pub const fn add(self, n: u64) -> GuestAddr {
        GuestAddr(self.0 + n)
    }
}

impl fmt::Display for GuestAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpa:{:#x}", self.0)
    }
}

impl From<GuestAddr> for u64 {
    fn from(a: GuestAddr) -> u64 {
        a.0
    }
}

/// Iterates over the pages covering the byte range `[addr, addr + len)`.
///
/// Returns an empty iterator for `len == 0`.
pub fn pages_covering(addr: GuestAddr, len: u64) -> impl Iterator<Item = PageIdx> {
    let first = addr.page().as_u64();
    let last = if len == 0 {
        first // empty range below
    } else {
        GuestAddr::new(addr.as_u64() + len - 1).page().as_u64()
    };
    let end = if len == 0 { first } else { last + 1 };
    (first..end).map(PageIdx::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_page_math() {
        let a = GuestAddr::new(0);
        assert_eq!(a.page(), PageIdx::new(0));
        assert_eq!(a.page_offset(), 0);
        let b = GuestAddr::new(4095);
        assert_eq!(b.page(), PageIdx::new(0));
        assert_eq!(b.page_offset(), 4095);
        let c = GuestAddr::new(4096);
        assert_eq!(c.page(), PageIdx::new(1));
        assert_eq!(c.page_offset(), 0);
    }

    #[test]
    fn page_to_addr_round_trip() {
        for i in [0u64, 1, 7, 65535] {
            let p = PageIdx::new(i);
            assert_eq!(p.base_addr().page(), p);
            assert_eq!(p.file_offset(), i * 4096);
        }
        assert_eq!(PageIdx::new(3).next(), PageIdx::new(4));
        assert_eq!(PageIdx::new(3).add(5), PageIdx::new(8));
        assert_eq!(GuestAddr::new(10).add(6), GuestAddr::new(16));
    }

    #[test]
    fn pages_covering_ranges() {
        let ps: Vec<u64> = pages_covering(GuestAddr::new(0), 1)
            .map(|p| p.as_u64())
            .collect();
        assert_eq!(ps, vec![0]);
        let ps: Vec<u64> = pages_covering(GuestAddr::new(4000), 200)
            .map(|p| p.as_u64())
            .collect();
        assert_eq!(ps, vec![0, 1]);
        let ps: Vec<u64> = pages_covering(GuestAddr::new(4096), 8192)
            .map(|p| p.as_u64())
            .collect();
        assert_eq!(ps, vec![1, 2]);
        assert_eq!(pages_covering(GuestAddr::new(123), 0).count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PageIdx::new(5)), "pfn:5");
        assert_eq!(format!("{}", GuestAddr::new(0x1000)), "gpa:0x1000");
        assert_eq!(u64::from(PageIdx::new(9)), 9);
        assert_eq!(u64::from(GuestAddr::new(9)), 9);
    }
}
