//! The function suite and its calibration constants.
//!
//! One [`FunctionSpec`] per Table 1 entry. The behavioural constants
//! (working-set composition, input sizes, contiguity, warm latency) are
//! calibrated so that the simulated platform reproduces the *shapes* of the
//! paper's Figures 2–5 and 7–9; each spec also carries the paper's reported
//! numbers ([`PaperTargets`]) so the benchmark harness can print
//! paper-vs-measured tables in `EXPERIMENTS.md`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Pages of the stable per-invocation *infrastructure* working set (gRPC
/// server, in-VM agents, guest network stack): ≈8 MB per §4.4. This is the
/// page count produced by [`guest_os::GuestKernel::rpc_plan`] under the
/// default layout; specs build on top of it.
pub const INFRA_PAGES: u64 = 1903;

/// The ten studied functions (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum FunctionId {
    /// Minimal function.
    helloworld,
    /// HTML table rendering.
    chameleon,
    /// Text encryption with an AES block-cipher.
    pyaes,
    /// JPEG image rotation.
    image_rotate,
    /// JSON serialization and de-serialization.
    json_serdes,
    /// Review analysis, serving (logistic regression, Scikit).
    lr_serving,
    /// Image classification (CNN, TensorFlow).
    cnn_serving,
    /// Name sequence generation (RNN, PyTorch).
    rnn_serving,
    /// Review analysis, training (logistic regression, Scikit).
    lr_training,
    /// Applies a gray-scale effect (OpenCV).
    video_processing,
}

impl FunctionId {
    /// All functions in the paper's presentation order.
    pub const ALL: [FunctionId; 10] = [
        FunctionId::helloworld,
        FunctionId::chameleon,
        FunctionId::pyaes,
        FunctionId::image_rotate,
        FunctionId::json_serdes,
        FunctionId::lr_serving,
        FunctionId::cnn_serving,
        FunctionId::rnn_serving,
        FunctionId::lr_training,
        FunctionId::video_processing,
    ];

    /// The function's name as the paper spells it.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The calibrated behaviour spec.
    pub fn spec(self) -> &'static FunctionSpec {
        &SPECS[self as usize]
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for parsing an unknown function name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFunctionError(pub String);

impl fmt::Display for ParseFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown function name: {}", self.0)
    }
}

impl std::error::Error for ParseFunctionError {}

impl FromStr for FunctionId {
    type Err = ParseFunctionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FunctionId::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| ParseFunctionError(s.to_string()))
    }
}

/// The paper's reported numbers for one function, for paper-vs-measured
/// reporting (not used by the simulation itself).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTargets {
    /// Fig 2/8: warm invocation latency, ms.
    pub warm_ms: f64,
    /// Fig 2/8: baseline-snapshot cold-start latency, ms.
    pub cold_ms: f64,
    /// Fig 8: REAP cold-start latency, ms.
    pub reap_ms: f64,
}

/// Calibrated behaviour of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Which function this is.
    pub id_name: &'static str,
    /// Paper name.
    pub name: &'static str,
    /// Table 1 description.
    pub description: &'static str,
    /// Warm (memory-resident) function-processing time, ms (Fig 2).
    pub warm_ms: f64,
    /// Booted-VM footprint target in MB (Fig 4, blue bars). Drives the
    /// amount of init-only heap the boot phase touches.
    pub boot_footprint_mb: u64,
    /// Stable per-invocation working set *beyond* the ~8 MB infrastructure
    /// set, in pages: runtime code actually exercised, loaded models,
    /// persistent buffers.
    pub stable_extra_pages: u64,
    /// Request input size range in KB (inclusive), varied per invocation.
    pub input_kb: (u64, u64),
    /// Ratio of input-derived transient data (decoded bitmaps, parsed
    /// trees) to raw input size.
    pub input_expansion: f64,
    /// Small per-invocation allocator-variance pages (timers, logging,
    /// arena slop) that differ between invocations even with equal inputs.
    pub variance_pages: u64,
    /// Mean contiguous-touch run length in pages (Fig 3: 2–3 typical,
    /// ~5 for `lr_training`).
    pub contiguity_run: u64,
    /// `video_processing` quirk (§6.3): inputs with different aspect ratios
    /// flip the order/size of large allocations, shifting the
    /// guest-physical layout and defeating the recorded working set.
    pub layout_shift: bool,
    /// The paper's reported latencies for comparison tables.
    pub paper: PaperTargets,
}

impl FunctionSpec {
    /// Mean pages of unique (input-dependent + variance) data per
    /// invocation.
    pub fn mean_unique_pages(&self) -> u64 {
        let mean_kb = (self.input_kb.0 + self.input_kb.1) / 2;
        (mean_kb as f64 * self.input_expansion / 4.0) as u64 + self.variance_pages
    }

    /// Expected working-set pages for an average invocation (infra +
    /// stable + unique) — the Fig 4 red bars.
    pub fn expected_ws_pages(&self) -> u64 {
        INFRA_PAGES + self.stable_extra_pages + self.mean_unique_pages()
    }

    /// Expected unique-page fraction across invocations (Fig 5).
    pub fn expected_unique_fraction(&self) -> f64 {
        self.mean_unique_pages() as f64 / self.expected_ws_pages() as f64
    }
}

/// Calibrated spec table, in [`FunctionId::ALL`] order.
///
/// Working-set sizes are derived from the paper's cold-start latencies
/// (Fig 2/8) under the serial-page-fault cost model, and cross-checked
/// against the Fig 4 footprint ranges (8–99 MB, ≈24 MB average) and the
/// Fig 5 reuse fractions (>97% for 7 of 10 functions, >76% for the
/// large-input ones).
static SPECS: [FunctionSpec; 10] = [
    FunctionSpec {
        id_name: "helloworld",
        name: "helloworld",
        description: "Minimal function",
        warm_ms: 1.0,
        boot_footprint_mb: 148,
        stable_extra_pages: 12,
        input_kb: (4, 16),
        input_expansion: 1.0,
        variance_pages: 27,
        contiguity_run: 2,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 1.0,
            cold_ms: 232.0,
            reap_ms: 60.0,
        },
    },
    FunctionSpec {
        id_name: "chameleon",
        name: "chameleon",
        description: "HTML table rendering",
        warm_ms: 29.0,
        boot_footprint_mb: 165,
        stable_extra_pages: 1765,
        input_kb: (100, 200),
        input_expansion: 1.5,
        variance_pages: 54,
        contiguity_run: 3,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 29.0,
            cold_ms: 437.0,
            reap_ms: 97.0,
        },
    },
    FunctionSpec {
        id_name: "pyaes",
        name: "pyaes",
        description: "Text encryption with an AES block-cipher",
        warm_ms: 3.0,
        boot_footprint_mb: 155,
        stable_extra_pages: 740,
        input_kb: (16, 64),
        input_expansion: 1.0,
        variance_pages: 50,
        contiguity_run: 2,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 3.0,
            cold_ms: 309.0,
            reap_ms: 55.0,
        },
    },
    FunctionSpec {
        id_name: "image_rotate",
        name: "image_rotate",
        description: "JPEG image rotation",
        warm_ms: 37.0,
        boot_footprint_mb: 180,
        stable_extra_pages: 2353,
        input_kb: (1000, 3000),
        input_expansion: 1.8,
        variance_pages: 190,
        contiguity_run: 3,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 37.0,
            cold_ms: 594.0,
            reap_ms: 207.0,
        },
    },
    FunctionSpec {
        id_name: "json_serdes",
        name: "json_serdes",
        description: "JSON serialization and de-serialization",
        warm_ms: 27.0,
        boot_footprint_mb: 185,
        stable_extra_pages: 2187,
        input_kb: (1500, 2500),
        input_expansion: 1.4,
        variance_pages: 40,
        contiguity_run: 2,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 27.0,
            cold_ms: 535.0,
            reap_ms: 127.0,
        },
    },
    FunctionSpec {
        id_name: "lr_serving",
        name: "lr_serving",
        description: "Review analysis, serving (logistic regr., Scikit)",
        warm_ms: 2.0,
        boot_footprint_mb: 200,
        stable_extra_pages: 4241,
        input_kb: (4, 16),
        input_expansion: 2.0,
        variance_pages: 123,
        contiguity_run: 2,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 2.0,
            cold_ms: 647.0,
            reap_ms: 66.0,
        },
    },
    FunctionSpec {
        id_name: "cnn_serving",
        name: "cnn_serving",
        description: "Image classification (CNN, TensorFlow)",
        warm_ms: 192.0,
        boot_footprint_mb: 256,
        stable_extra_pages: 10358,
        input_kb: (100, 300),
        input_expansion: 1.5,
        variance_pages: 115,
        contiguity_run: 3,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 192.0,
            cold_ms: 1424.0,
            reap_ms: 237.0,
        },
    },
    FunctionSpec {
        id_name: "rnn_serving",
        name: "rnn_serving",
        description: "Names sequence generation (RNN, PyTorch)",
        warm_ms: 25.0,
        boot_footprint_mb: 230,
        stable_extra_pages: 2497,
        input_kb: (2, 8),
        input_expansion: 1.0,
        variance_pages: 113,
        contiguity_run: 2,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 25.0,
            cold_ms: 503.0,
            reap_ms: 82.0,
        },
    },
    FunctionSpec {
        id_name: "lr_training",
        name: "lr_training",
        description: "Review analysis, training (logistic regr., Scikit)",
        warm_ms: 4991.0,
        boot_footprint_mb: 210,
        stable_extra_pages: 17244,
        input_kb: (8000, 12000),
        input_expansion: 2.4,
        variance_pages: 220,
        contiguity_run: 5,
        layout_shift: false,
        paper: PaperTargets {
            warm_ms: 4991.0,
            cold_ms: 8057.0,
            reap_ms: 6090.0,
        },
    },
    FunctionSpec {
        id_name: "video_processing",
        name: "video_processing",
        description: "Applies gray-scale effect (OpenCV)",
        warm_ms: 1476.0,
        boot_footprint_mb: 220,
        // Lower than its cold-latency-derived working set because the
        // transient OpenCV mats (layout_shift) contribute ~2300 touched
        // pages on top of the stable set.
        stable_extra_pages: 6493,
        input_kb: (3000, 5000),
        input_expansion: 0.95,
        variance_pages: 20,
        contiguity_run: 3,
        layout_shift: true,
        paper: PaperTargets {
            warm_ms: 1476.0,
            cold_ms: 2642.0,
            reap_ms: 2540.0,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_functions_present() {
        assert_eq!(FunctionId::ALL.len(), 10);
        for f in FunctionId::ALL {
            assert_eq!(f.spec().name, f.name());
            assert_eq!(f.spec().id_name, f.name());
        }
    }

    #[test]
    fn parse_round_trip() {
        for f in FunctionId::ALL {
            assert_eq!(f.name().parse::<FunctionId>().unwrap(), f);
        }
        assert!("nonsense".parse::<FunctionId>().is_err());
        assert_eq!(
            "nope".parse::<FunctionId>().unwrap_err().to_string(),
            "unknown function name: nope"
        );
    }

    #[test]
    fn working_sets_match_paper_ranges() {
        // Fig 4: restored working sets span 8-99 MB.
        for f in FunctionId::ALL {
            let ws_mb = f.spec().expected_ws_pages() as f64 * 4096.0 / 1e6;
            assert!(
                (7.0..105.0).contains(&ws_mb),
                "{f}: ws {ws_mb:.1} MB out of the paper's 8-99 MB range"
            );
        }
        // Largest working set belongs to lr_training (~99 MB, the Fig 4 max).
        let max = FunctionId::ALL
            .into_iter()
            .max_by_key(|f| f.spec().expected_ws_pages())
            .unwrap();
        assert_eq!(max, FunctionId::lr_training);
    }

    #[test]
    fn mean_working_set_near_24_mb() {
        // Fig 4: "24 MB on average". Our working sets are derived from the
        // Fig 2/8 cold latencies under the serial-fault model, which puts
        // the mean slightly above Fig 4's own average (the paper's figures
        // are not perfectly mutually consistent); the shape — small sets
        // for most functions, lr_training as the ~99 MB maximum — holds.
        let mean_mb: f64 = FunctionId::ALL
            .into_iter()
            .map(|f| f.spec().expected_ws_pages() as f64 * 4096.0 / 1e6)
            .sum::<f64>()
            / 10.0;
        assert!(
            (18.0..34.0).contains(&mean_mb),
            "mean ws {mean_mb:.1} MB should be near the paper's 24 MB"
        );
    }

    #[test]
    fn unique_fractions_match_fig5_structure() {
        // Fig 5: the large-input functions (image_rotate, json_serdes,
        // lr_training, video_processing) have lower reuse; everyone stays
        // above 76% reuse (unique < 24%).
        let lower_reuse = [
            FunctionId::image_rotate,
            FunctionId::json_serdes,
            FunctionId::lr_training,
            FunctionId::video_processing,
        ];
        for f in FunctionId::ALL {
            let u = f.spec().expected_unique_fraction();
            assert!(u < 0.26, "{f}: unique fraction {u:.2} exceeds Fig 5 bounds");
            if lower_reuse.contains(&f) {
                assert!(u > 0.05, "{f}: large-input function should have >5% unique");
            } else {
                assert!(u < 0.04, "{f}: small-input function should reuse >96%");
            }
        }
    }

    #[test]
    fn boot_footprints_in_paper_range() {
        // Fig 4: booted instances occupy 148-256 MB.
        for f in FunctionId::ALL {
            let mb = f.spec().boot_footprint_mb;
            assert!(
                (148..=256).contains(&mb),
                "{f}: boot footprint {mb} MB outside 148-256 MB"
            );
        }
    }

    #[test]
    fn contiguity_matches_fig3() {
        for f in FunctionId::ALL {
            let run = f.spec().contiguity_run;
            if f == FunctionId::lr_training {
                assert_eq!(run, 5, "lr_training shows ~5-page runs in Fig 3");
            } else {
                assert!((2..=3).contains(&run), "{f}: Fig 3 runs are 2-3 pages");
            }
        }
    }

    #[test]
    fn only_video_processing_shifts_layout() {
        for f in FunctionId::ALL {
            assert_eq!(
                f.spec().layout_shift,
                f == FunctionId::video_processing,
                "{f}"
            );
        }
    }

    #[test]
    fn paper_speedups_average_near_3_7x() {
        let speedups: Vec<f64> = FunctionId::ALL
            .into_iter()
            .map(|f| f.spec().paper.cold_ms / f.spec().paper.reap_ms)
            .collect();
        let g = sim_core::stats::geo_mean(&speedups).unwrap();
        assert!(
            (3.3..4.2).contains(&g),
            "paper targets should geo-mean near 3.7x, got {g:.2}"
        );
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((9.0..10.5).contains(&max), "max speedup ~9.7x, got {max:.1}");
        assert!((1.0..1.1).contains(&min), "min speedup ~1.04x, got {min:.2}");
    }
}
