//! Invocation input generation.
//!
//! Per the paper's methodology, functions are invoked with *different
//! inputs* across invocations (Fig 5 measures page overlap "across
//! invocations with different inputs"). Inputs are deterministic functions
//! of `(function, invocation index)` so every experiment is reproducible.

use sim_core::DetRng;

use crate::spec::{FunctionId, FunctionSpec};

/// The input of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationInput {
    /// Which function this input targets.
    pub function: FunctionId,
    /// Invocation sequence number (0 = the recording invocation).
    pub seq: u64,
    /// Raw input size in KB (drawn from the spec's range).
    pub size_kb: u64,
    /// Input "shape" selector. For `video_processing` this is the aspect
    /// ratio class that shifts OpenCV's allocation pattern (§6.3); other
    /// functions ignore it.
    pub shape: u64,
    /// Seed for input-content-dependent behaviour.
    pub content_seed: u64,
}

impl InvocationInput {
    /// Transient guest pages this input expands into (decoded data,
    /// parse trees, tensors).
    pub fn derived_pages(&self, spec: &FunctionSpec) -> u64 {
        ((self.size_kb as f64 * spec.input_expansion) / 4.0).max(1.0) as u64
    }
}

/// Deterministic input generator for a function.
///
/// # Example
///
/// ```
/// use functionbench::{FunctionId, InputGenerator};
///
/// let gen = InputGenerator::new(FunctionId::image_rotate, 42);
/// let a = gen.input(0);
/// let b = gen.input(0);
/// assert_eq!(a, b, "same seq, same input");
/// let c = gen.input(1);
/// assert!(a.size_kb != c.size_kb || a.content_seed != c.content_seed);
/// ```
#[derive(Debug, Clone)]
pub struct InputGenerator {
    function: FunctionId,
    seed: u64,
}

impl InputGenerator {
    /// Creates a generator for `function` with a base `seed`.
    pub fn new(function: FunctionId, seed: u64) -> Self {
        InputGenerator { function, seed }
    }

    /// The input of invocation `seq`.
    pub fn input(&self, seq: u64) -> InvocationInput {
        let spec = self.function.spec();
        let mut rng = DetRng::new(self.seed ^ (self.function as u64) << 32).fork(seq);
        let (lo, hi) = spec.input_kb;
        let size_kb = if lo == hi {
            lo
        } else {
            lo + rng.gen_range(hi - lo + 1)
        };
        // Two aspect-ratio classes; only video_processing cares.
        let shape = rng.gen_range(2);
        InvocationInput {
            function: self.function,
            seq,
            size_kb,
            shape,
            content_seed: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic() {
        let g1 = InputGenerator::new(FunctionId::pyaes, 7);
        let g2 = InputGenerator::new(FunctionId::pyaes, 7);
        for seq in 0..20 {
            assert_eq!(g1.input(seq), g2.input(seq));
        }
    }

    #[test]
    fn inputs_vary_across_sequence() {
        let g = InputGenerator::new(FunctionId::json_serdes, 9);
        let distinct: std::collections::HashSet<u64> =
            (0..50).map(|s| g.input(s).content_seed).collect();
        assert!(distinct.len() > 45, "content seeds should vary");
        let sizes: std::collections::HashSet<u64> =
            (0..50).map(|s| g.input(s).size_kb).collect();
        assert!(sizes.len() > 5, "input sizes should vary");
    }

    #[test]
    fn sizes_respect_spec_range() {
        for f in FunctionId::ALL {
            let g = InputGenerator::new(f, 3);
            let (lo, hi) = f.spec().input_kb;
            for seq in 0..100 {
                let s = g.input(seq).size_kb;
                assert!((lo..=hi).contains(&s), "{f}: size {s} outside {lo}..={hi}");
            }
        }
    }

    #[test]
    fn derived_pages_scale_with_expansion() {
        let f = FunctionId::image_rotate;
        let input = InputGenerator::new(f, 1).input(0);
        let pages = input.derived_pages(f.spec());
        let expect = (input.size_kb as f64 * f.spec().input_expansion / 4.0) as u64;
        assert_eq!(pages, expect);
        assert!(pages >= 1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InputGenerator::new(FunctionId::chameleon, 1).input(0);
        let b = InputGenerator::new(FunctionId::chameleon, 2).input(0);
        assert_ne!(a.content_seed, b.content_seed);
    }

    #[test]
    fn shapes_cover_both_classes() {
        let g = InputGenerator::new(FunctionId::video_processing, 11);
        let shapes: std::collections::HashSet<u64> = (0..40).map(|s| g.input(s).shape).collect();
        assert_eq!(shapes.len(), 2, "both aspect classes should appear");
    }
}
