//! Invocation arrival generation.
//!
//! The paper motivates snapshotting with production behaviour from the
//! Azure Functions study (§2.1): 90% of functions are invoked less than
//! once per minute, >96% at least once per week, and providers deallocate
//! idle instances after 8–20 minutes. This module generates arrival
//! processes with those shapes for the colocation/keep-warm experiments.

use sim_core::{DetRng, SimDuration, SimTime};

use crate::spec::FunctionId;

/// The arrival process of one function's invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Poisson arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean gap between invocations.
        mean_gap: SimDuration,
    },
    /// Fixed-rate arrivals.
    Periodic {
        /// Exact gap between invocations.
        gap: SimDuration,
    },
    /// A burst of `n` simultaneous arrivals at time zero (the Fig 9
    /// concurrency sweep).
    Burst {
        /// Number of simultaneous invocations.
        n: u32,
    },
}

/// One scheduled invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationEvent {
    /// Arrival instant.
    pub at: SimTime,
    /// Target function.
    pub function: FunctionId,
    /// Invocation sequence number within the function.
    pub seq: u64,
}

/// Deterministic arrival generator.
///
/// # Example
///
/// ```
/// use functionbench::{ArrivalKind, FunctionId, WorkloadGenerator};
/// use sim_core::SimDuration;
///
/// let gen = WorkloadGenerator::new(42);
/// let events = gen.arrivals(
///     FunctionId::helloworld,
///     ArrivalKind::Periodic { gap: SimDuration::from_secs(60) },
///     3,
/// );
/// assert_eq!(events.len(), 3);
/// assert_eq!(events[2].at.as_secs_f64(), 120.0);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    seed: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator { seed }
    }

    /// Generates `count` arrivals for `function`.
    pub fn arrivals(&self, function: FunctionId, kind: ArrivalKind, count: u64) -> Vec<InvocationEvent> {
        let mut rng = DetRng::new(self.seed ^ (function as u64).wrapping_mul(0x9E37));
        let mut events = Vec::with_capacity(count as usize);
        let mut now = SimTime::ZERO;
        for seq in 0..count {
            let at = match kind {
                ArrivalKind::Poisson { mean_gap } => {
                    let gap = SimDuration::from_secs_f64(
                        rng.exp_f64(mean_gap.as_secs_f64().max(1e-9)),
                    );
                    now += gap;
                    now
                }
                ArrivalKind::Periodic { gap } => {
                    let at = now;
                    now += gap;
                    at
                }
                ArrivalKind::Burst { .. } => SimTime::ZERO,
            };
            events.push(InvocationEvent { at, function, seq });
        }
        if let ArrivalKind::Burst { n } = kind {
            events.truncate(n as usize);
        }
        events
    }

    /// Samples an Azure-like per-function invocation rate (§2.1): 90% of
    /// functions see less than one invocation per minute; the tail is
    /// busier. Returns the mean inter-arrival gap.
    pub fn azure_like_gap(&self, function_index: u64) -> SimDuration {
        let mut rng = DetRng::new(self.seed).fork(function_index);
        if rng.gen_bool(0.9) {
            // Rare: mean gap between 1 minute and ~1 day, log-uniform.
            let log_lo = (60.0f64).ln();
            let log_hi = (86_400.0f64).ln();
            let g = (log_lo + rng.next_f64() * (log_hi - log_lo)).exp();
            SimDuration::from_secs_f64(g)
        } else {
            // Busy: mean gap between 100 ms and 1 minute.
            let log_lo = (0.1f64).ln();
            let log_hi = (60.0f64).ln();
            let g = (log_lo + rng.next_f64() * (log_hi - log_lo)).exp();
            SimDuration::from_secs_f64(g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_arrivals_are_evenly_spaced() {
        let gen = WorkloadGenerator::new(1);
        let ev = gen.arrivals(
            FunctionId::pyaes,
            ArrivalKind::Periodic {
                gap: SimDuration::from_millis(500),
            },
            5,
        );
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.at.as_millis_f64() as u64, 500 * i as u64);
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn poisson_mean_gap_tracks_request() {
        let gen = WorkloadGenerator::new(2);
        let mean = SimDuration::from_secs(60);
        let n = 2000;
        let ev = gen.arrivals(FunctionId::helloworld, ArrivalKind::Poisson { mean_gap: mean }, n);
        let total = ev.last().unwrap().at.as_secs_f64();
        let got = total / n as f64;
        assert!(
            (got - 60.0).abs() < 5.0,
            "mean gap {got:.1}s should be near 60s"
        );
        // Arrival times strictly increase (exponential gaps are positive).
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn burst_is_simultaneous() {
        let gen = WorkloadGenerator::new(3);
        let ev = gen.arrivals(FunctionId::helloworld, ArrivalKind::Burst { n: 64 }, 64);
        assert_eq!(ev.len(), 64);
        assert!(ev.iter().all(|e| e.at == SimTime::ZERO));
    }

    #[test]
    fn deterministic_across_generators() {
        let a = WorkloadGenerator::new(7).arrivals(
            FunctionId::chameleon,
            ArrivalKind::Poisson {
                mean_gap: SimDuration::from_secs(1),
            },
            50,
        );
        let b = WorkloadGenerator::new(7).arrivals(
            FunctionId::chameleon,
            ArrivalKind::Poisson {
                mean_gap: SimDuration::from_secs(1),
            },
            50,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn azure_distribution_shape() {
        let gen = WorkloadGenerator::new(4);
        let n = 2000u64;
        let rare = (0..n)
            .filter(|&i| gen.azure_like_gap(i) > SimDuration::from_secs(60))
            .count() as f64
            / n as f64;
        // §2.1: ~90% of functions are invoked less than once per minute.
        // Gaps are sampled log-uniform above/below the 1-minute split, so
        // the rare bucket lands at ~90% minus boundary mass.
        assert!(
            (0.8..0.95).contains(&rare),
            "rare fraction {rare:.2} should be near 0.9"
        );
    }
}
