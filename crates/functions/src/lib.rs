//! # functionbench
//!
//! Behaviour models of the ten serverless functions the paper studies
//! (Table 1): nine Python functions adopted from the FunctionBench suite
//! plus `helloworld`.
//!
//! We cannot run CPython/TensorFlow inside a simulated guest, so each
//! function is modelled by the observable behaviour the paper's analysis
//! depends on:
//!
//! * a **boot/init phase** — pages touched while the guest boots, the
//!   runtime imports libraries, and the function initializes (Fig 4's
//!   148–256 MB booted footprints);
//! * an **invocation phase** — the pages touched while serving one request
//!   (Fig 4's 8–99 MB restored working sets) interleaved with compute
//!   segments summing to the function's warm latency (Fig 2);
//! * **input-dependent allocations** — fresh buffers sized by the request
//!   input, which produce the unique-page fractions of Fig 5 and REAP's
//!   mispredictions (§7.1);
//! * short touch runs (mean 2–3 pages, 5 for `lr_training`) reproducing
//!   the contiguity distribution of Fig 3.
//!
//! Dynamic allocations go through the guest's buddy allocator
//! ([`guest_os::BuddyAllocator`]), so working-set stability across
//! invocations *emerges* from snapshot-restored allocator state, exactly
//! as §4.4 argues.

pub mod behavior;
pub mod input;
pub mod spec;
pub mod workload;

pub use behavior::{FunctionProgram, GuestOp};
pub use input::{InputGenerator, InvocationInput};
pub use spec::{FunctionId, FunctionSpec, PaperTargets, INFRA_PAGES};
pub use workload::{ArrivalKind, InvocationEvent, WorkloadGenerator};
