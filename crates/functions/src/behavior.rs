//! Function execution behaviour: the op streams a vCPU replays.
//!
//! Each function runs in three phases, mirroring the lifecycle the paper
//! instruments (§4.1):
//!
//! 1. **boot/init** ([`FunctionProgram::install`]) — guest kernel boot,
//!    runtime imports, function initialization. Everything this phase
//!    touches is captured in the snapshot and inflates the booted footprint
//!    (Fig 4 blue bars) but is mostly *never touched again*;
//! 2. **invocation** ([`FunctionProgram::invocation_ops`]) — the stable
//!    infrastructure set (gRPC/net-stack, §4.4), the exercised runtime
//!    slice, the persistent model buffers, plus *input-dependent* arena
//!    spans and small allocator variance — the sources of Fig 5's unique
//!    pages;
//! 3. **teardown** — transient allocations return to the buddy allocator,
//!    restoring snapshot-identical allocator state (the §4.4 stability
//!    mechanism).
//!
//! Touches are emitted in short interleaved runs whose mean length is the
//! spec's `contiguity_run`, reproducing Fig 3.

use std::collections::BTreeSet;

use guest_mem::PageIdx;
use guest_os::{AddressSpace, GuestKernel, RegionKind, TouchChunk};
use sim_core::{DetRng, SimDuration};

use crate::input::InvocationInput;
use crate::spec::{FunctionId, FunctionSpec};

/// One step of guest execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestOp {
    /// Access a run of guest-physical pages (read or write — both fault
    /// identically on first touch).
    Touch(TouchChunk),
    /// Execute on the vCPU for the given duration without new page
    /// touches.
    Compute(SimDuration),
}

/// Collects the distinct pages a stream of ops touches.
pub fn touched_pages(ops: &[GuestOp]) -> BTreeSet<PageIdx> {
    let mut set = BTreeSet::new();
    for op in ops {
        if let GuestOp::Touch(chunk) = op {
            set.extend(chunk.iter());
        }
    }
    set
}

/// Total compute across a stream of ops.
pub fn total_compute(ops: &[GuestOp]) -> SimDuration {
    ops.iter()
        .map(|op| match op {
            GuestOp::Compute(d) => *d,
            GuestOp::Touch(_) => SimDuration::ZERO,
        })
        .sum()
}

/// An installed function: resolved page sets inside one VM's address
/// space.
///
/// Created by [`FunctionProgram::install`], which also returns the boot-
/// phase op stream. Subsequent [`invocation_ops`](Self::invocation_ops)
/// calls generate per-request streams.
#[derive(Debug, Clone)]
pub struct FunctionProgram {
    id: FunctionId,
    /// Runtime-code pages exercised on every invocation (stable).
    stable_runtime: Vec<TouchChunk>,
    /// Persistent heap buffers (loaded models etc.; stable).
    stable_heap: Vec<TouchChunk>,
    /// Function handler code.
    func_code: Vec<TouchChunk>,
    /// Base and size (pages) of the input-data arena.
    input_arena: (PageIdx, u64),
    /// Base and size (pages) of the scratch/variance arena.
    scratch_arena: (PageIdx, u64),
    /// Pages the boot phase touched (for footprint assertions).
    boot_touched_pages: u64,
}

/// Splits a chunk list into runs of at most `run` pages.
fn rechunk(chunks: &[TouchChunk], run: u64) -> Vec<TouchChunk> {
    let mut out = Vec::new();
    for c in chunks {
        let mut off = 0;
        while off < c.pages {
            let len = run.min(c.pages - off);
            out.push(TouchChunk::new(c.start.add(off), len));
            off += len;
        }
    }
    out
}

/// Boot-time compute estimate: kernel boot + runtime imports + function
/// init. Scales with the booted footprint (TensorFlow imports dwarf a
/// helloworld), matching the §2.2 observation that in-VM bootstrap takes
/// up to several seconds.
fn boot_compute_ms(spec: &FunctionSpec) -> f64 {
    500.0 + 8.0 * spec.boot_footprint_mb as f64
}

impl FunctionProgram {
    /// Boots the function inside `space`: returns the installed program and
    /// the boot-phase op stream (to be replayed by a booting VM).
    pub fn install(id: FunctionId, space: &mut AddressSpace, kernel: &GuestKernel) -> (Self, Vec<GuestOp>) {
        let spec = id.spec();
        let mut ops = Vec::new();
        let mut boot_set: BTreeSet<PageIdx> = BTreeSet::new();
        let emit = |ops: &mut Vec<GuestOp>, set: &mut BTreeSet<PageIdx>, chunk: TouchChunk| {
            set.extend(chunk.iter());
            ops.push(GuestOp::Touch(chunk));
        };

        // 1. Guest kernel boot + agents start.
        for c in kernel.boot_plan() {
            emit(&mut ops, &mut boot_set, c);
        }
        // 2. Runtime import sweep: all of the runtime-code region.
        let runtime = space.region(RegionKind::RuntimeCode);
        for c in rechunk(&[TouchChunk::new(runtime.first, runtime.pages)], 32) {
            emit(&mut ops, &mut boot_set, c);
        }
        // 3. Function handler code.
        let fc = space.region(RegionKind::FunctionCode);
        let func_code = rechunk(&[TouchChunk::new(fc.first, fc.pages)], 16);
        for c in &func_code {
            emit(&mut ops, &mut boot_set, *c);
        }

        // 4. Persistent init allocations (model weights, caches): 60% of the
        //    stable extra set lives on the heap, 40% is a runtime-code slice.
        //    Buffers grow incrementally (as Python heaps do), so each lands
        //    in a small buddy block; a 1-page spacer between buffers keeps
        //    them from merging into long physical runs — this is what gives
        //    the working set its 2-3 page guest-physical contiguity (Fig 3).
        let heap_stable_pages = spec.stable_extra_pages * 6 / 10;
        let runtime_stable_pages = spec.stable_extra_pages - heap_stable_pages;
        let run = spec.contiguity_run.max(1);
        let mut stable_heap = Vec::new();
        let mut remaining = heap_stable_pages;
        while remaining > 0 {
            let take = run.min(remaining);
            let start = space
                .alloc_heap(take)
                .expect("guest heap exhausted during function init");
            stable_heap.push(TouchChunk::new(start, take));
            // Non-power-of-two runs leave a natural hole from buddy
            // rounding; power-of-two runs need an explicit spacer so
            // consecutive buffers do not merge into long physical runs.
            if take.is_power_of_two() {
                let _spacer = space
                    .alloc_heap(1)
                    .expect("guest heap exhausted during function init");
            }
            remaining -= take;
        }
        for c in &stable_heap {
            emit(&mut ops, &mut boot_set, *c);
        }

        // Stable runtime slice: stride across the runtime region so the
        // per-invocation set is a scattered subset of the imported code.
        let stable_runtime = stable_runtime_stripe(runtime.first, runtime.pages, runtime_stable_pages, spec.contiguity_run);

        // 5. Arenas for per-invocation data. Input spans relocate inside a
        //    ~3x arena (driving Fig 5 uniqueness); scratch covers the small
        //    allocator variance. Spans are touched in run/skip patterns so
        //    even large inputs keep Fig 3's short physical contiguity.
        let max_input_pages =
            ((spec.input_kb.1 as f64 * spec.input_expansion) / 4.0).max(1.0) as u64;
        let max_span = max_input_pages + max_input_pages / run.max(2);
        let input_arena_pages = (2 * max_span).max(8);
        let input_base = space
            .alloc_heap(input_arena_pages.min(1024))
            .expect("input arena allocation failed");
        // Arenas larger than one buddy block are stitched from blocks; we
        // only need the base + virtual extent to be stable, so allocate the
        // remainder as follow-on blocks (buddy hands them out contiguously
        // from a fresh heap).
        let mut allocated = input_arena_pages.min(1024);
        while allocated < input_arena_pages {
            let block = (input_arena_pages - allocated).min(1024);
            let _ = space.alloc_heap(block).expect("input arena extension");
            allocated += block;
        }
        let scratch_pages = (4 * spec.variance_pages).max(8);
        let scratch_base = space
            .alloc_heap(scratch_pages.min(1024))
            .expect("scratch arena allocation failed");
        let mut allocated = scratch_pages.min(1024);
        while allocated < scratch_pages {
            let block = (scratch_pages - allocated).min(1024);
            let _ = space.alloc_heap(block).expect("scratch arena extension");
            allocated += block;
        }

        // 6. Boot-only filler (page cache, rootfs reads, init-only code
        //    paths): touched from the *top* of the heap so the paper's
        //    booted-footprint targets (Fig 4) are met without occupying the
        //    allocator.
        let footprint_target = spec.boot_footprint_mb * 1024 * 1024 / 4096;
        let heap = space.region(RegionKind::Heap);
        let already = boot_set.len() as u64;
        let filler = footprint_target.saturating_sub(already).min(heap.pages);
        if filler > 0 {
            let filler_first = heap.end().as_u64() - filler;
            for c in rechunk(&[TouchChunk::new(PageIdx::new(filler_first), filler)], 32) {
                emit(&mut ops, &mut boot_set, c);
            }
        }

        // Distribute boot compute across the stream.
        let compute = SimDuration::from_millis_f64(boot_compute_ms(spec));
        intersperse_compute(&mut ops, compute);

        let program = FunctionProgram {
            id,
            stable_runtime,
            stable_heap,
            func_code,
            input_arena: (input_base, input_arena_pages),
            scratch_arena: (scratch_base, scratch_pages),
            boot_touched_pages: boot_set.len() as u64,
        };
        (program, ops)
    }

    /// Which function this program is.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// Pages the boot phase touched.
    pub fn boot_touched_pages(&self) -> u64 {
        self.boot_touched_pages
    }

    /// Generates the op stream for serving one invocation.
    ///
    /// Transient allocations (video_processing's OpenCV mats) are freed at
    /// the end, restoring the buddy allocator to its snapshot state — the
    /// §4.4 stability mechanism.
    pub fn invocation_ops(&self, space: &mut AddressSpace, kernel: &GuestKernel, input: &InvocationInput) -> Vec<GuestOp> {
        let spec = self.id.spec();
        let mut rng = DetRng::new(input.content_seed);
        let run = spec.contiguity_run;

        // Source 1: the stable infrastructure set (gRPC + net stack).
        let infra = kernel.rpc_plan();
        // Source 2: exercised runtime code.
        let runtime = self.stable_runtime.clone();
        // Source 3: persistent model/heap buffers.
        let heap = rechunk(&self.stable_heap, run);
        // Source 4: handler code.
        let code = self.func_code.clone();
        // Source 5: input span inside the arena, relocated by content. The
        // span is touched in run/skip strides so its guest-physical
        // contiguity stays short (Fig 3) even for multi-MB inputs.
        let input_chunks = {
            let stride_run = run.max(2);
            let p = input.derived_pages(spec);
            let span = (p + p / stride_run).min(self.input_arena.1);
            let (base, arena) = self.input_arena;
            let slack = arena - span;
            // Quantize the start so overlaps across invocations come in
            // large steps (whole/half/no overlap), as reallocation patterns
            // do in practice.
            let quantum = (span / 2).max(1);
            let start_off = if slack == 0 {
                0
            } else {
                (rng.gen_range(slack + 1) / quantum) * quantum
            };
            let mut chunks = Vec::new();
            let mut touched = 0;
            let mut off = start_off;
            while touched < p && off + stride_run <= arena {
                let take = stride_run.min(p - touched);
                chunks.push(TouchChunk::new(base.add(off), take));
                touched += take;
                off += stride_run + 1; // skip one page between runs
            }
            chunks
        };
        // Source 6: allocator variance in the scratch arena.
        let scratch_chunks = {
            let (base, arena) = self.scratch_arena;
            let mut chunks = Vec::new();
            let mut left = spec.variance_pages;
            while left > 0 {
                let len = rng.run_length(1.5, 2).min(left);
                let off = rng.gen_range(arena.saturating_sub(len).max(1));
                chunks.push(TouchChunk::new(base.add(off), len));
                left -= len;
            }
            chunks
        };
        // Source 7 (video_processing): transient OpenCV mats whose
        // allocation order/size depends on the input's aspect ratio,
        // shifting guest-physical layout between invocations (§6.3). Mats
        // are touched in run/skip strides like input spans.
        let mut transient: Vec<(PageIdx, Vec<TouchChunk>)> = Vec::new();
        if spec.layout_shift {
            // Mats are allocated in <=4 MB chunks (the guest buddy's max
            // order). Different aspect ratios stride the mats with a
            // different row pitch, so a different *phase* of each mat's
            // pages is hot — this is what defeats the recorded working set
            // in §6.3's video_processing anomaly.
            let phase = if input.shape == 0 { 0 } else { 2 };
            for pages in [1024u64, 1024, 1024] {
                match space.alloc_heap(pages) {
                    Ok(start) => {
                        let mut chunks = Vec::new();
                        let mut off = phase;
                        while off + run <= pages {
                            chunks.push(TouchChunk::new(start.add(off), run));
                            off += run + 1;
                        }
                        transient.push((start, chunks));
                    }
                    Err(e) => panic!("transient mat allocation failed: {e}"),
                }
            }
        }

        // Interleave all sources round-robin, starting from a rotated
        // position: runs from different regions alternate, which is what
        // keeps faulted-page contiguity short (Fig 3).
        let mut sources: Vec<Vec<TouchChunk>> = vec![infra, runtime, heap, code, input_chunks, scratch_chunks];
        for (_, chunks) in &transient {
            sources.push(chunks.clone());
        }
        let mut ops = Vec::new();
        let rotation = rng.gen_range(sources.len() as u64) as usize;
        sources.rotate_left(rotation);
        let mut cursors = vec![0usize; sources.len()];
        loop {
            let mut emitted = false;
            for (i, source) in sources.iter().enumerate() {
                if cursors[i] < source.len() {
                    ops.push(GuestOp::Touch(source[cursors[i]]));
                    cursors[i] += 1;
                    emitted = true;
                }
            }
            if !emitted {
                break;
            }
        }

        // Free transients: buddy returns to its snapshot state.
        for (start, _) in transient {
            space
                .free_heap(start)
                .expect("transient buffer double-free");
        }

        // Spread the function's warm compute across the stream.
        intersperse_compute(&mut ops, SimDuration::from_millis_f64(spec.warm_ms));
        ops
    }
}

/// Builds the stable runtime-code stripe: `pages` pages across the region
/// in runs of `run`, evenly strided.
fn stable_runtime_stripe(first: PageIdx, region_pages: u64, pages: u64, run: u64) -> Vec<TouchChunk> {
    if pages == 0 {
        return Vec::new();
    }
    let run = run.max(1);
    let n_runs = pages.div_ceil(run);
    let stride = (region_pages / n_runs).max(run);
    let mut chunks = Vec::new();
    let mut emitted = 0;
    let mut pos = 0;
    while emitted < pages && pos + run <= region_pages {
        let len = run.min(pages - emitted);
        chunks.push(TouchChunk::new(first.add(pos), len));
        emitted += len;
        pos += stride;
    }
    // If the stride walked off the end before emitting everything, pack the
    // remainder at the end of the region.
    if emitted < pages {
        let len = pages - emitted;
        chunks.push(TouchChunk::new(first.add(region_pages - len), len));
    }
    chunks
}

/// Inserts compute segments after every touch op, splitting `total`
/// evenly. A trailing segment carries the rounding remainder.
fn intersperse_compute(ops: &mut Vec<GuestOp>, total: SimDuration) {
    if total.is_zero() {
        return;
    }
    let touches = ops
        .iter()
        .filter(|op| matches!(op, GuestOp::Touch(_)))
        .count();
    if touches == 0 {
        ops.push(GuestOp::Compute(total));
        return;
    }
    let per = total / touches as u64;
    let mut out = Vec::with_capacity(ops.len() * 2);
    let mut spent = SimDuration::ZERO;
    for op in ops.drain(..) {
        let is_touch = matches!(op, GuestOp::Touch(_));
        out.push(op);
        if is_touch && !per.is_zero() {
            out.push(GuestOp::Compute(per));
            spent += per;
        }
    }
    let rem = total.saturating_sub(spent);
    if !rem.is_zero() {
        out.push(GuestOp::Compute(rem));
    }
    *ops = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputGenerator;
    use crate::spec::INFRA_PAGES;
    use guest_os::LayoutSpec;

    fn setup(id: FunctionId) -> (AddressSpace, GuestKernel, FunctionProgram, Vec<GuestOp>) {
        let mut space = AddressSpace::new(65536, LayoutSpec::default());
        let kernel = GuestKernel::new(&space);
        let (program, boot_ops) = FunctionProgram::install(id, &mut space, &kernel);
        (space, kernel, program, boot_ops)
    }

    #[test]
    fn boot_footprint_tracks_spec_target() {
        for id in [FunctionId::helloworld, FunctionId::cnn_serving, FunctionId::lr_training] {
            let (_, _, program, _) = setup(id);
            let mb = program.boot_touched_pages() as f64 * 4096.0 / (1024.0 * 1024.0);
            let target = id.spec().boot_footprint_mb as f64;
            assert!(
                (mb - target).abs() / target < 0.08,
                "{id}: boot footprint {mb:.0} MB should be near {target} MB"
            );
        }
    }

    #[test]
    fn invocation_ws_matches_expected_pages() {
        for id in FunctionId::ALL {
            let (mut space, kernel, program, _) = setup(id);
            let input = InputGenerator::new(id, 1).input(1);
            let ops = program.invocation_ops(&mut space, &kernel, &input);
            let ws = touched_pages(&ops).len() as u64;
            let expect = id.spec().expected_ws_pages();
            let ratio = ws as f64 / expect as f64;
            assert!(
                (0.75..1.35).contains(&ratio),
                "{id}: ws {ws} pages vs expected {expect} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn invocation_ops_are_deterministic_per_input() {
        let (mut space, kernel, program, _) = setup(FunctionId::pyaes);
        let input = InputGenerator::new(FunctionId::pyaes, 5).input(3);
        let a = program.invocation_ops(&mut space, &kernel, &input);
        let b = program.invocation_ops(&mut space, &kernel, &input);
        assert_eq!(a, b);
    }

    #[test]
    fn working_set_is_stable_across_inputs_for_small_input_functions() {
        // Fig 5: >97% of pages identical across invocations for 7/10
        // functions.
        for id in [FunctionId::helloworld, FunctionId::pyaes, FunctionId::cnn_serving] {
            let (mut space, kernel, program, _) = setup(id);
            let gen = InputGenerator::new(id, 2);
            let ws1 = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(1)));
            let ws2 = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(2)));
            let same = ws1.intersection(&ws2).count() as f64;
            let reuse = same / ws1.len() as f64;
            assert!(
                reuse > 0.93,
                "{id}: reuse {reuse:.3} should be high for small-input functions"
            );
        }
    }

    #[test]
    fn large_input_functions_reuse_less_but_above_70pct() {
        for id in [FunctionId::image_rotate, FunctionId::json_serdes, FunctionId::lr_training] {
            let (mut space, kernel, program, _) = setup(id);
            let gen = InputGenerator::new(id, 3);
            let ws1 = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(1)));
            let ws2 = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(2)));
            let same = ws1.intersection(&ws2).count() as f64;
            let reuse = same / ws1.len() as f64;
            assert!(
                (0.70..0.995).contains(&reuse),
                "{id}: reuse {reuse:.3} should be lower but above the paper's 76% floor"
            );
        }
    }

    #[test]
    fn video_processing_shape_shifts_layout() {
        let id = FunctionId::video_processing;
        let (mut space, kernel, program, _) = setup(id);
        let gen = InputGenerator::new(id, 4);
        // Find two inputs with different aspect classes.
        let a = (0..32).map(|s| gen.input(s)).find(|i| i.shape == 0).unwrap();
        let b = (0..32).map(|s| gen.input(s)).find(|i| i.shape == 1).unwrap();
        let ws_a = touched_pages(&program.invocation_ops(&mut space, &kernel, &a));
        let ws_b = touched_pages(&program.invocation_ops(&mut space, &kernel, &b));
        let same = ws_a.intersection(&ws_b).count() as f64;
        let reuse = same / ws_a.len().max(ws_b.len()) as f64;
        assert!(
            reuse < 0.92,
            "aspect shift should displace a noticeable page share, reuse {reuse:.3}"
        );
        // Buddy state restored: same input again gives identical set.
        let ws_a2 = touched_pages(&program.invocation_ops(&mut space, &kernel, &a));
        assert_eq!(ws_a, ws_a2, "allocator state must recur after free");
    }

    #[test]
    fn compute_total_equals_warm_latency() {
        for id in [FunctionId::helloworld, FunctionId::lr_training] {
            let (mut space, kernel, program, _) = setup(id);
            let input = InputGenerator::new(id, 6).input(1);
            let ops = program.invocation_ops(&mut space, &kernel, &input);
            let compute = total_compute(&ops);
            let warm = id.spec().warm_ms;
            assert!(
                (compute.as_millis_f64() - warm).abs() < 0.01,
                "{id}: compute {:.3} ms != warm {warm} ms",
                compute.as_millis_f64()
            );
        }
    }

    #[test]
    fn touch_runs_are_short() {
        // Fig 3: contiguity of 2-3 pages (5 for lr_training).
        let (mut space, kernel, program, _) = setup(FunctionId::json_serdes);
        let input = InputGenerator::new(FunctionId::json_serdes, 7).input(1);
        let ops = program.invocation_ops(&mut space, &kernel, &input);
        let max_run = ops
            .iter()
            .filter_map(|op| match op {
                GuestOp::Touch(c) => Some(c.pages),
                GuestOp::Compute(_) => None,
            })
            .max()
            .unwrap();
        assert!(max_run <= 16, "touch runs stay short, got {max_run}");
    }

    #[test]
    fn infra_set_is_subset_of_every_invocation() {
        let (mut space, kernel, program, _) = setup(FunctionId::chameleon);
        let input = InputGenerator::new(FunctionId::chameleon, 8).input(1);
        let ws = touched_pages(&program.invocation_ops(&mut space, &kernel, &input));
        let mut infra_pages = 0u64;
        for c in kernel.rpc_plan() {
            for p in c.iter() {
                assert!(ws.contains(&p), "infra page {p} missing from ws");
                infra_pages += 1;
            }
        }
        assert_eq!(infra_pages, INFRA_PAGES, "INFRA_PAGES constant drifted");
    }

    #[test]
    fn boot_ops_include_compute() {
        let (_, _, _, boot_ops) = setup(FunctionId::helloworld);
        let compute = total_compute(&boot_ops);
        assert!(
            compute.as_millis_f64() > 400.0,
            "boot compute should be substantial (§2.2), got {compute}"
        );
    }

    #[test]
    fn rechunk_splits_exactly() {
        let chunks = vec![TouchChunk::new(PageIdx::new(0), 10)];
        let out = rechunk(&chunks, 3);
        let total: u64 = out.iter().map(|c| c.pages).sum();
        assert_eq!(total, 10);
        assert!(out.iter().all(|c| c.pages <= 3));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn stripe_emits_exact_page_count() {
        for pages in [1u64, 7, 100, 819] {
            let chunks = stable_runtime_stripe(PageIdx::new(0), 8192, pages, 3);
            let total: u64 = chunks.iter().map(|c| c.pages).sum();
            assert_eq!(total, pages, "stripe must emit exactly {pages}");
        }
    }
}
