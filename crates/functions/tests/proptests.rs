//! Property tests for the function behaviour models: the invariants the
//! paper's analysis rests on must hold for *any* seed and input sequence.

use functionbench::behavior::touched_pages;
use functionbench::{FunctionId, FunctionProgram, InputGenerator};
use guest_os::{AddressSpace, GuestKernel, LayoutSpec};
use proptest::prelude::*;

fn setup(id: FunctionId) -> (AddressSpace, GuestKernel, FunctionProgram) {
    let mut space = AddressSpace::new(65536, LayoutSpec::default());
    let kernel = GuestKernel::new(&space);
    let (program, _boot) = FunctionProgram::install(id, &mut space, &kernel);
    (space, kernel, program)
}

fn any_function() -> impl Strategy<Value = FunctionId> {
    (0usize..FunctionId::ALL.len()).prop_map(|i| FunctionId::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §4.4's core mechanism: serving an invocation leaves the buddy
    /// allocator in exactly its pre-invocation state (transients freed),
    /// so the next invocation sees identical allocator decisions.
    #[test]
    fn allocator_state_recurs_after_any_invocation(
        id in any_function(),
        seed in any::<u64>(),
        seq in 0u64..50,
    ) {
        let (mut space, kernel, program) = setup(id);
        let before = space.heap().state_fingerprint();
        let input = InputGenerator::new(id, seed).input(seq);
        let _ops = program.invocation_ops(&mut space, &kernel, &input);
        prop_assert_eq!(
            space.heap().state_fingerprint(),
            before,
            "buddy state must recur after teardown"
        );
    }

    /// Working sets stay within the envelope the figures rely on,
    /// whatever the input.
    #[test]
    fn working_set_bounded_for_any_input(
        id in any_function(),
        seed in any::<u64>(),
        seq in 0u64..50,
    ) {
        let (mut space, kernel, program) = setup(id);
        let input = InputGenerator::new(id, seed).input(seq);
        let ops = program.invocation_ops(&mut space, &kernel, &input);
        let ws = touched_pages(&ops).len() as u64;
        let expect = id.spec().expected_ws_pages();
        let ratio = ws as f64 / expect as f64;
        prop_assert!(
            (0.6..1.6).contains(&ratio),
            "{id}: ws {ws} vs expected {expect}"
        );
        // All touched pages lie inside guest memory.
        for p in touched_pages(&ops) {
            prop_assert!(p.as_u64() < 65536);
        }
    }

    /// Same input -> byte-identical op stream, no matter how many other
    /// invocations ran in between (statelessness across requests).
    #[test]
    fn replay_determinism_is_history_independent(
        id in any_function(),
        seed in any::<u64>(),
        history in proptest::collection::vec(0u64..20, 0..5),
    ) {
        let (mut space, kernel, program) = setup(id);
        let gen = InputGenerator::new(id, seed);
        let target = gen.input(99);
        let fresh = program.invocation_ops(&mut space, &kernel, &target);
        for h in history {
            let _ = program.invocation_ops(&mut space, &kernel, &gen.input(h));
        }
        let after_history = program.invocation_ops(&mut space, &kernel, &target);
        prop_assert_eq!(fresh, after_history);
    }

    /// Two invocations with different inputs still share the entire
    /// infrastructure working set (what REAP's stability rests on).
    #[test]
    fn infra_set_always_shared(id in any_function(), seed in any::<u64>()) {
        let (mut space, kernel, program) = setup(id);
        let gen = InputGenerator::new(id, seed);
        let a = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(1)));
        let b = touched_pages(&program.invocation_ops(&mut space, &kernel, &gen.input(2)));
        for chunk in kernel.rpc_plan() {
            for p in chunk.iter() {
                prop_assert!(a.contains(&p) && b.contains(&p), "infra page {p} missing");
            }
        }
    }
}
