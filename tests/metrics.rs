//! The fleet-metrics invariance and equivalence suite:
//!
//! * **on/off invariance** — attaching a [`MetricsRegistry`] must never
//!   move a simulated outcome: `InvocationOutcome` debug renderings are
//!   byte-identical metrics on vs. off, across all four [`ColdPolicy`]
//!   variants (plus record, warm and concurrent passes) and shard counts
//!   1/2/3 — and with metrics on, the registry actually observed the
//!   fleet (counters nonzero, exposition populated);
//! * **rollup/exact equivalence** — windowed percentiles merged from
//!   log-bucketed rollup histograms match the exact nearest-rank
//!   percentiles of the raw spans within the pinned bucket error bound
//!   (`exact <= est <= exact + exact/32`), for real invocations across
//!   every cold policy and shard counts 1/2/3, and for synthetic streams
//!   over arbitrary sub-ranges of windows;
//! * **no-rescan acceptance** — a P99-over-window query against a
//!   1M-span store is answered from rollup batches alone, pinned by
//!   read accounting on the backing store.

use std::collections::BTreeMap;

use functionbench::FunctionId;
use proptest::prelude::*;
use sim_core::MetricsRegistry;
use sim_storage::FileStore;
use vhive_cluster::{ClusterOrchestrator, ColdRequest};
use vhive_core::ColdPolicy;
use vhive_telemetry::{
    build_rollups, latency_report, scan, synthesize, window_report, TelemetrySink,
    DEFAULT_WINDOW_NS,
};

const FUNCS: [FunctionId; 2] = [FunctionId::helloworld, FunctionId::pyaes];

fn prepared_cluster(
    seed: u64,
    shards: usize,
    metrics: bool,
) -> (ClusterOrchestrator, Option<MetricsRegistry>) {
    let mut c = ClusterOrchestrator::new(seed, shards);
    let registry = metrics.then(MetricsRegistry::new);
    c.set_metrics(registry.clone());
    for f in FUNCS {
        c.register(f);
        c.invoke_record(f);
    }
    (c, registry)
}

/// The full invocation mix: record (in setup), every cold policy, a warm
/// pass, and a concurrent batch over all policies.
fn run_mix(c: &mut ClusterOrchestrator) -> String {
    let mut dump = String::new();
    for f in FUNCS {
        for policy in ColdPolicy::ALL {
            dump.push_str(&format!("{:?}\n", c.invoke_cold(f, policy)));
        }
        dump.push_str(&format!("{:?}\n", c.invoke_warm(f)));
    }
    let reqs: Vec<ColdRequest> = FUNCS
        .iter()
        .flat_map(|&f| ColdPolicy::ALL.into_iter().map(move |p| ColdRequest::shared(f, p)))
        .collect();
    dump.push_str(&format!("{:?}\n", c.invoke_concurrent(&reqs).outcomes));
    dump
}

/// The pinned merged-percentile error bound: a log-bucketed estimate
/// reports its bucket's upper bound, at most 1/32 above the exact value.
fn assert_within_bucket_bound(exact: u64, est: u64, what: &str) {
    assert!(
        est >= exact && est <= exact + exact / 32,
        "{what}: estimate {est} outside [exact, exact + exact/32] for exact {exact}"
    );
}

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig { cases: 3 })]

    /// Metrics on vs. off: byte-identical outcome renderings at shard
    /// counts 1, 2 and 3 — the registry-off path is provably free of
    /// behavioural cost, and the registry-on path actually measured the
    /// fleet.
    #[test]
    fn outcomes_invariant_metrics_on_off(seed in 0u64..10_000) {
        for shards in [1usize, 2, 3] {
            let off = {
                let (mut c, _) = prepared_cluster(seed, shards, false);
                run_mix(&mut c)
            };
            let (mut c, registry) = prepared_cluster(seed, shards, true);
            let on = run_mix(&mut c);
            prop_assert_eq!(&on, &off, "metrics must not move outcomes (shards={})", shards);
            let registry = registry.unwrap();
            // 2 records + 2x(4 cold + 1 warm) + 8 concurrent = 20.
            let exposed = registry.expose();
            for series in [
                "invocation_latency_ns_count{policy=\"Record\"}",
                "invocation_latency_ns_count{policy=\"Reap\"}",
                "invocation_latency_ns_count{policy=\"Warm\"}",
                "phase_ns_count{phase=\"processing\",policy=\"Vanilla\"}",
                "guest_uffd_fault_serves_total",
                "storage_read_bytes_total",
                "storage_write_bytes_total",
                "frame_cache_request_misses_total",
            ] {
                prop_assert!(
                    exposed.contains(series),
                    "series {} missing from exposition (shards={}):\n{}",
                    series, shards, exposed
                );
            }
            prop_assert!(registry.counter("guest_uffd_fault_serves_total") > 0);
            prop_assert!(registry.counter("storage_read_bytes_total") > 0);
        }
    }

    /// Rollup/exact equivalence on the simulator's own spans: real
    /// invocations across all four cold policies at shard counts 1, 2
    /// and 3; the merged windowed report agrees with the exact raw-span
    /// report — count/min/max exactly, percentiles within the pinned
    /// bucket bound.
    #[test]
    fn rollup_percentiles_match_exact_report(seed in 0u64..10_000) {
        for shards in [1usize, 2, 3] {
            let (mut c, _) = prepared_cluster(seed, shards, false);
            let store = FileStore::new();
            let sink = TelemetrySink::with_batch_rows(store.clone(), 8);
            c.set_telemetry(Some(sink.clone()));
            run_mix(&mut c);
            sink.flush();

            let exact = latency_report(&store);
            build_rollups(&store, DEFAULT_WINDOW_NS);
            let windowed = window_report(&store, 0, u64::MAX);
            prop_assert_eq!(
                windowed.groups.len(), exact.groups.len(),
                "group sets diverge (shards={})", shards
            );
            for (key, e) in &exact.groups {
                let w = windowed
                    .group(&key.function, &key.policy, key.shard)
                    .unwrap_or_else(|| panic!("group {key:?} missing from windowed report"));
                prop_assert_eq!(w.count, e.count, "{:?}", key);
                prop_assert_eq!(w.min_ns, e.min_ns, "{:?}", key);
                prop_assert_eq!(w.max_ns, e.max_ns, "{:?}", key);
                assert_within_bucket_bound(e.p50_ns, w.p50_ns, &format!("{key:?} p50"));
                assert_within_bucket_bound(e.p95_ns, w.p95_ns, &format!("{key:?} p95"));
                assert_within_bucket_bound(e.p99_ns, w.p99_ns, &format!("{key:?} p99"));
            }
        }
    }

    /// Same equivalence over a *sub-range* of windows on a synthetic
    /// stream: the merged report over `[lo, hi)` matches nearest-rank
    /// percentiles recomputed from only the raw spans whose virtual
    /// completion time falls in those windows.
    #[test]
    fn windowed_subrange_matches_exact_nearest_rank(
        seed in 0u64..10_000,
        n in 500u64..2_000,
        lo in 0u64..4,
        span in 1u64..4,
    ) {
        let window_ns = 250_000_000; // 250 ms: a 2 ms mean gap spreads
        let hi = lo + span;          // n spans over many windows
        let store = FileStore::new();
        let sink = TelemetrySink::new(store.clone());
        synthesize(&sink, seed, n, 3, &["helloworld", "pyaes"]);

        // Exact nearest-rank per group over the selected windows only.
        let (spans, _) = scan(&store);
        let mut exact: BTreeMap<(String, String, u32), Vec<u64>> = BTreeMap::new();
        for s in &spans {
            let w = s.vt_ns / window_ns;
            if w >= lo && w < hi {
                exact
                    .entry((s.function.clone(), s.policy.clone(), s.shard))
                    .or_default()
                    .push(s.latency_ns);
            }
        }
        for lat in exact.values_mut() {
            lat.sort_unstable();
        }
        let nearest = |lat: &[u64], p: f64| -> u64 {
            let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        };

        build_rollups(&store, window_ns);
        let windowed = window_report(&store, lo, hi);
        prop_assert_eq!(
            windowed.groups.len(), exact.len(),
            "group sets diverge over windows [{}..{})", lo, hi
        );
        for ((function, policy, shard), lat) in &exact {
            let w = windowed
                .group(function, policy, *shard)
                .unwrap_or_else(|| panic!("{function}/{policy}/{shard} missing"));
            prop_assert_eq!(w.count, lat.len() as u64);
            prop_assert_eq!(w.min_ns, lat[0]);
            prop_assert_eq!(w.max_ns, *lat.last().unwrap());
            for (p, est) in [(50.0, w.p50_ns), (95.0, w.p95_ns), (99.0, w.p99_ns)] {
                assert_within_bucket_bound(
                    nearest(lat, p),
                    est,
                    &format!("{function}/{policy}/{shard} p{p} over [{lo}..{hi})"),
                );
            }
        }
    }
}

/// The acceptance gate: a P99-over-window query against a 1M-span store
/// is answered by merging rollup batches alone — the raw span batches
/// are never rescanned, pinned by read accounting on the backing store.
#[test]
fn million_span_window_query_never_rescans_raw_spans() {
    let store = FileStore::new();
    let sink = TelemetrySink::new(store.clone());
    synthesize(&sink, 42, 1_000_000, 3, &["helloworld", "chameleon", "pyaes", "json_serdes"]);

    let (built, scan_stats) = build_rollups(&store, DEFAULT_WINDOW_NS);
    assert_eq!(scan_stats.batches_dropped, 0);
    assert_eq!(built.spans, 1_000_000);
    assert!(built.batches > 0);

    // Query a mid-stream window range; every read during the query must
    // be a rollup batch (there are exactly `built.batches` of those).
    let reads_before = store.read_calls();
    let report = window_report(&store, 100, 200);
    let query_reads = store.read_calls() - reads_before;
    assert!(
        query_reads <= built.batches,
        "query read {query_reads} files but only {} rollup batches exist",
        built.batches
    );
    assert!(query_reads > 0, "query must have read the rollup batches");
    assert_eq!(report.scan.batches_dropped, 0);
    assert!(report.total_count() > 0, "mid-stream windows must hold spans");
    for (key, stats, _) in &report.groups {
        assert!(stats.p99_ns >= stats.p50_ns, "{key:?}");
        assert!(stats.p99_ns <= stats.max_ns, "{key:?}");
    }
}
