//! Shape assertions for every figure the benchmark harness regenerates:
//! lighter-weight versions of the `vhive-bench` binaries that run in the
//! test suite, pinning the qualitative results the paper reports.

use functionbench::FunctionId;
use vhive_core::detect::contiguity;
use vhive_core::report::speedup;
use vhive_core::{ColdPolicy, Orchestrator};

/// Fig 2: cold invocations are 1-2 orders of magnitude slower than warm.
#[test]
fn fig2_cold_vs_warm_orders_of_magnitude() {
    let mut orch = Orchestrator::new(21);
    for f in [FunctionId::helloworld, FunctionId::lr_serving] {
        orch.register(f);
        let warm = orch.invoke_warm(f);
        orch.release_warm(f);
        let cold = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let ratio = cold.latency.as_secs_f64() / warm.latency.as_secs_f64();
        assert!(
            ratio > 10.0,
            "{f}: cold/warm ratio {ratio:.0} should exceed 10x"
        );
        orch.unregister(f);
    }
}

/// Fig 2 (breakdown): Load VMM + connection restoration land in the
/// paper's 156-317 ms window for the SSD platform.
#[test]
fn fig2_universal_components_range() {
    let mut orch = Orchestrator::new(22);
    let f = FunctionId::helloworld;
    orch.register(f);
    let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
    let universal = out.breakdown.load_vmm + out.breakdown.conn_restore;
    let ms = universal.as_millis_f64();
    assert!(
        (80.0..340.0).contains(&ms),
        "load VMM + conn restore = {ms:.0} ms (paper: 156-317 ms)"
    );
}

/// Fig 3: mean contiguous-region length is 2-3 pages; lr_training is the
/// outlier at ~5.
#[test]
fn fig3_contiguity_shape() {
    let mut orch = Orchestrator::new(23);
    let mut hello_mean = 0.0;
    let mut lr_mean = 0.0;
    for f in [FunctionId::helloworld, FunctionId::lr_training] {
        orch.register(f);
        let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let stats = contiguity(&out.touched);
        if f == FunctionId::helloworld {
            hello_mean = stats.mean_run;
        } else {
            lr_mean = stats.mean_run;
        }
        orch.unregister(f);
    }
    assert!(
        (1.7..3.8).contains(&hello_mean),
        "helloworld contiguity {hello_mean:.1} (paper: 2-3)"
    );
    assert!(
        lr_mean > hello_mean,
        "lr_training ({lr_mean:.1}) shows longer runs than helloworld ({hello_mean:.1})"
    );
    assert!(
        (3.5..8.0).contains(&lr_mean),
        "lr_training contiguity {lr_mean:.1} (paper: ~5)"
    );
}

/// Fig 4: booted footprints 148-256 MB; restored working sets 8-99 MB and
/// a 61-96% reduction.
#[test]
fn fig4_footprint_reduction() {
    let mut orch = Orchestrator::new(24);
    for f in [FunctionId::helloworld, FunctionId::cnn_serving] {
        let info = orch.register(f);
        let boot_mb = info.boot_footprint_bytes as f64 / 1e6;
        let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let ws_mb = out.footprint_bytes as f64 / 1e6;
        let reduction = 1.0 - ws_mb / boot_mb;
        assert!(
            (0.55..0.97).contains(&reduction),
            "{f}: footprint reduction {:.0}% (paper: 61-96%)",
            reduction * 100.0
        );
        orch.unregister(f);
    }
}

/// Fig 5: small-input functions reuse ≳95% of pages across invocations
/// with different inputs; large-input ones reuse less but >70%.
#[test]
fn fig5_reuse_structure() {
    let mut orch = Orchestrator::new(25);
    let reuse_of = |orch: &mut Orchestrator, f: FunctionId| {
        orch.register(f);
        let a = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let b = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let overlap = vhive_core::working_set_overlap(&a.touched, &b.touched);
        orch.unregister(f);
        overlap.reuse_fraction()
    };
    let hello = reuse_of(&mut orch, FunctionId::helloworld);
    let image = reuse_of(&mut orch, FunctionId::image_rotate);
    assert!(hello > 0.95, "helloworld reuse {hello:.3} (paper: >97%)");
    assert!(
        (0.70..0.97).contains(&image),
        "image_rotate reuse {image:.3} (paper: lower, but >76%)"
    );
    assert!(hello > image, "large inputs must lower reuse");
}

/// Fig 7: the four design points land in order, with REAP within the
/// paper's ~60 ms ballpark for helloworld.
#[test]
fn fig7_design_point_ladder() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(26);
    orch.register(f);
    orch.invoke_record(f);
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
    let parallel = orch.invoke_cold(f, ColdPolicy::ParallelPF);
    let ws_file = orch.invoke_cold(f, ColdPolicy::WsFileCached);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);
    // Paper: 232 -> 118 -> 71 -> 60 ms.
    let v = vanilla.latency.as_millis_f64();
    let p = parallel.latency.as_millis_f64();
    let w = ws_file.latency.as_millis_f64();
    let r = reap.latency.as_millis_f64();
    assert!((170.0..300.0).contains(&v), "vanilla {v:.0} ms (paper 232)");
    assert!((80.0..170.0).contains(&p), "parallel {p:.0} ms (paper 118)");
    assert!((55.0..110.0).contains(&w), "ws-file {w:.0} ms (paper 71)");
    assert!((40.0..80.0).contains(&r), "reap {r:.0} ms (paper 60)");
}

/// Fig 8: REAP speeds up cold starts by >2.5x on small-input functions and
/// still wins on large-input ones.
#[test]
fn fig8_speedups() {
    let mut orch = Orchestrator::new(27);
    for (f, min_speedup) in [
        (FunctionId::helloworld, 2.5),
        (FunctionId::lr_serving, 3.0),
        (FunctionId::image_rotate, 1.7),
    ] {
        orch.register(f);
        let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
        orch.invoke_record(f);
        let reap = orch.invoke_cold(f, ColdPolicy::Reap);
        let s = speedup(vanilla.latency, reap.latency);
        assert!(
            s > min_speedup,
            "{f}: speedup {s:.2}x below expected {min_speedup}x"
        );
        orch.unregister(f);
    }
}

/// §6.3: connection restoration shrinks dramatically under REAP (45x in
/// the paper).
#[test]
fn conn_restore_collapses_under_reap() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(28);
    orch.register(f);
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
    orch.invoke_record(f);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);
    let shrink = vanilla.breakdown.conn_restore.as_secs_f64()
        / reap.breakdown.conn_restore.as_secs_f64().max(1e-9);
    assert!(
        shrink > 10.0,
        "conn restore should shrink >10x, got {shrink:.1}x"
    );
    // Paper: 4-7 ms after prefetch.
    let ms = reap.breakdown.conn_restore.as_millis_f64();
    assert!(ms < 12.0, "REAP conn restore {ms:.1} ms (paper 4-7 ms)");
}
