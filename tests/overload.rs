//! End-to-end overload storm: the acceptance gates of the
//! overload-resilience layer, driven through the public cluster API.
//!
//! A seeded 10× burst of deadline-carrying cold starts hits a two-shard
//! cluster. With the admission layer **off**, the storm serializes on
//! the shared timed disk and blows every deadline; with it **on**,
//! bounded queues and per-function token buckets shed early and the
//! survivors finish inside budget. The gates:
//!
//! * **no hangs** — every offered request resolves to an explicit
//!   [`Disposition`]; outcomes + shed + expired account for the whole
//!   batch;
//! * **goodput** — admission on yields ≥ 1.5× the goodput of admission
//!   off under the same storm;
//! * **observability** — every disposition lands in the
//!   [`MetricsRegistry`] (`overload_shed_total{reason}`,
//!   `deadline_exceeded_total`, `cluster_goodput`).

use functionbench::FunctionId;
use sim_core::metrics::labeled;
use sim_core::{MetricsRegistry, SimDuration, SimTime};
use vhive_cluster::{
    AdmissionConfig, ClusterOrchestrator, ColdRequest, Disposition, RateLimit, ShedReason,
};
use vhive_core::ColdPolicy;

const FUNCS: [FunctionId; 2] = [FunctionId::helloworld, FunctionId::pyaes];
const BUDGET: SimDuration = SimDuration::from_millis(250);

/// A 10× storm: `10 × FUNCS.len()` shared requests, 100 µs apart, each
/// carrying the same deadline budget.
fn storm() -> Vec<ColdRequest> {
    (0..10 * FUNCS.len())
        .map(|i| {
            let mut r = ColdRequest::shared(FUNCS[i % FUNCS.len()], ColdPolicy::Reap);
            r.arrival = SimTime::ZERO + SimDuration::from_micros(100 * i as u64);
            r.deadline = Some(BUDGET);
            r
        })
        .collect()
}

fn prepared(admission: Option<AdmissionConfig>) -> ClusterOrchestrator {
    let mut c = ClusterOrchestrator::new(0xC0_FFEE, 2);
    for f in FUNCS {
        c.register(f);
        c.invoke_record(f);
    }
    c.set_admission(admission);
    c
}

fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_queue_depth: Some(FUNCS.len()),
        rate_limit: Some(RateLimit {
            burst: 4.0,
            per_sec: 200.0,
        }),
        ..AdmissionConfig::default()
    }
}

#[test]
fn ten_x_storm_resolves_every_request_and_admission_saves_goodput() {
    let reqs = storm();

    let mut off = prepared(None);
    let storm_off = off.invoke_concurrent(&reqs);
    let mut on = prepared(Some(tight_admission()));
    let storm_on = on.invoke_concurrent(&reqs);

    for (name, batch) in [("off", &storm_off), ("on", &storm_on)] {
        // Zero hangs: every request has an explicit disposition, and the
        // disposition table fully accounts for the batch.
        assert_eq!(batch.dispositions.len(), reqs.len(), "admission {name}");
        assert_eq!(batch.served.len(), batch.outcomes.len(), "admission {name}");
        let shed = batch
            .dispositions
            .iter()
            .filter(|d| matches!(d, Disposition::Shed { .. }))
            .count();
        let expired_unserved = batch
            .dispositions
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                **d == Disposition::DeadlineExceeded && !batch.served.contains(i)
            })
            .count();
        assert_eq!(
            batch.outcomes.len() + shed + expired_unserved,
            reqs.len(),
            "admission {name}: outcomes + shed + expired must cover the storm"
        );
        // Served indices point at non-shed dispositions.
        for &i in &batch.served {
            assert!(
                !matches!(batch.dispositions[i], Disposition::Shed { .. }),
                "served request {i} cannot be shed"
            );
        }
    }

    // The un-shed storm contends itself past every deadline; admission
    // sheds early and the survivors complete inside budget.
    assert!(
        storm_on.goodput() as f64 >= 1.5 * storm_off.goodput() as f64,
        "goodput on ({}) must be >= 1.5x goodput off ({})",
        storm_on.goodput(),
        storm_off.goodput()
    );
    assert!(storm_on.goodput() > 0, "admission must save some requests");

    // Shed requests never consume a sequence number: the served outcomes
    // carry exactly the first seqs, like a batch of only the admitted
    // subset would.
    let on_shed: Vec<usize> = storm_on
        .dispositions
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, Disposition::Shed { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(!on_shed.is_empty(), "a 10x storm must shed something");
    let subset: Vec<ColdRequest> = storm_on
        .served
        .iter()
        .map(|&i| reqs[i])
        .collect();
    let mut replay = prepared(None);
    let reference = replay.invoke_concurrent(&subset);
    assert_eq!(
        format!("{:?}", storm_on.outcomes),
        format!("{:?}", reference.outcomes),
        "admitted subset must be served byte-identically to a layer-off run"
    );
}

#[test]
fn storm_dispositions_land_in_the_metrics_registry() {
    let reqs = storm();
    let mut c = prepared(Some(tight_admission()));
    c.set_metrics(Some(MetricsRegistry::new()));
    let batch = c.invoke_concurrent(&reqs);

    let m = c.metrics().expect("registry attached").clone();
    let shed_by = |reason: ShedReason| {
        batch
            .dispositions
            .iter()
            .filter(|d| matches!(d, Disposition::Shed { reason: r, .. } if *r == reason))
            .count() as u64
    };
    assert_eq!(
        m.counter(&labeled("overload_shed_total", &[("reason", "queue_full")])),
        shed_by(ShedReason::QueueFull)
    );
    assert_eq!(
        m.counter(&labeled("overload_shed_total", &[("reason", "rate_limited")])),
        shed_by(ShedReason::RateLimited)
    );
    let expired = batch
        .dispositions
        .iter()
        .filter(|d| **d == Disposition::DeadlineExceeded)
        .count() as u64;
    assert_eq!(m.counter("deadline_exceeded_total"), expired);
    assert_eq!(
        m.gauge("cluster_goodput"),
        Some(batch.goodput() as i64),
        "goodput gauge must reflect the batch"
    );
}
