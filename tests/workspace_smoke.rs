//! Workspace canary: every function in the suite goes through the whole
//! stack — register (boot + snapshot), one Vanilla cold start, one
//! record, one REAP cold start — and REAP must beat Vanilla everywhere.
//!
//! This intentionally touches every crate: `functionbench` specs,
//! `guest_os` layout/boot plans, `microvm` snapshot/restore, `guest_mem`
//! uffd, `sim_storage` snapshot files, and the `vhive_core`
//! orchestrator + timeline. If any layer regresses, this is the first
//! test to go red.

use functionbench::FunctionId;
use vhive_core::{ColdPolicy, Orchestrator};

#[test]
fn every_function_reap_beats_vanilla() {
    let mut orch = Orchestrator::new(0xCA_FE);
    for f in FunctionId::ALL {
        let info = orch.register(f);
        assert!(
            info.boot_footprint_bytes > 0,
            "{f}: registration must boot and snapshot"
        );

        let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
        assert!(vanilla.uffd_faults > 0, "{f}: vanilla must lazy-fault");
        assert_eq!(vanilla.prefetched_pages, 0, "{f}: vanilla never prefetches");

        orch.invoke_record(f);
        assert!(orch.has_ws(f), "{f}: record must persist a working set");

        let reap = orch.invoke_cold(f, ColdPolicy::Reap);
        assert!(
            reap.latency < vanilla.latency,
            "{f}: REAP ({reap}) must beat Vanilla ({vanilla})",
            reap = reap.latency,
            vanilla = vanilla.latency
        );
        assert!(reap.prefetched_pages > 0, "{f}: REAP must prefetch");
        assert!(
            reap.verified_pages > 0,
            "{f}: functional pass must verify installed pages"
        );

        // Snapshot artifacts really exist in the shared store.
        for file in ["guest_mem", "vmm_state", "ws_pages", "ws_trace"] {
            assert!(
                orch.fs().exists(&format!("snapshots/{f}/{file}")),
                "{f}: missing snapshot artifact {file}"
            );
        }

        // Keep the canary's memory footprint flat across 10 functions.
        orch.unregister(f);
    }
}
