//! Cross-crate cluster contracts: a 1-shard cluster is bit-for-bit the
//! single orchestrator (the Fig 7 ladder included), and the shared timed
//! disk makes concurrent batches contend honestly.

use functionbench::FunctionId;
use vhive_cluster::{cluster_concurrent, ClusterOrchestrator, ColdRequest};
use vhive_core::{ColdPolicy, Orchestrator};

/// A 1-shard cluster must reproduce today's `Orchestrator` exactly:
/// identical seed, identical call sequence, byte-identical
/// `InvocationOutcome` debug renderings for every cold policy plus the
/// record pass.
#[test]
fn one_shard_cluster_is_byte_identical_to_orchestrator() {
    let f = FunctionId::helloworld;
    let seed = 0xA5_1405;

    let single: Vec<String> = {
        let mut o = Orchestrator::new(seed);
        o.register(f);
        let mut outs = vec![format!("{:?}", o.invoke_record(f))];
        outs.extend(
            ColdPolicy::ALL
                .into_iter()
                .map(|p| format!("{:?}", o.invoke_cold(f, p))),
        );
        outs.push(format!("{:?}", o.invoke_warm(f)));
        outs
    };

    let clustered: Vec<String> = {
        let mut c = ClusterOrchestrator::new(seed, 1);
        c.register(f);
        let mut outs = vec![format!("{:?}", c.invoke_record(f))];
        outs.extend(
            ColdPolicy::ALL
                .into_iter()
                .map(|p| format!("{:?}", c.invoke_cold(f, p))),
        );
        outs.push(format!("{:?}", c.invoke_warm(f)));
        outs
    };

    assert_eq!(single, clustered, "1-shard cluster must change nothing");
}

/// The Fig 7 design-point ladder (paper: 232 → 118 → 71 → 60 ms; this
/// reproduction: 236 → 116 → 75 → 56 ms) holds through the cluster, at
/// any shard count.
#[test]
fn fig7_ladder_reproduces_through_cluster() {
    let f = FunctionId::helloworld;
    for shards in [1usize, 4] {
        let mut c = ClusterOrchestrator::new(26, shards);
        c.register(f);
        c.invoke_record(f);
        let ms = |p: ColdPolicy, c: &mut ClusterOrchestrator| {
            c.invoke_cold(f, p).latency.as_millis_f64()
        };
        let v = ms(ColdPolicy::Vanilla, &mut c);
        let p = ms(ColdPolicy::ParallelPF, &mut c);
        let w = ms(ColdPolicy::WsFileCached, &mut c);
        let r = ms(ColdPolicy::Reap, &mut c);
        assert!((170.0..300.0).contains(&v), "vanilla {v:.0} ms ({shards} shards)");
        assert!((80.0..170.0).contains(&p), "parallel {p:.0} ms ({shards} shards)");
        assert!((55.0..110.0).contains(&w), "ws-file {w:.0} ms ({shards} shards)");
        assert!((40.0..80.0).contains(&r), "reap {r:.0} ms ({shards} shards)");
        assert!(v > p && p > w && w > r, "ladder must descend");
    }
}

/// Concurrent batches are reproducible: the same seed and request list
/// give byte-identical outcome renderings on a fresh cluster.
#[test]
fn concurrent_batches_are_deterministic() {
    let run = || -> String {
        let mut c = ClusterOrchestrator::new(99, 3);
        let funcs = [FunctionId::helloworld, FunctionId::pyaes, FunctionId::chameleon];
        for f in funcs {
            c.register(f);
            c.invoke_record(f);
        }
        let reqs: Vec<ColdRequest> = (0..12)
            .map(|i| ColdRequest::independent(funcs[i % 3], ColdPolicy::Reap))
            .collect();
        format!("{:?}", c.invoke_concurrent(&reqs).outcomes)
    };
    assert_eq!(run(), run(), "same seed must reproduce the batch exactly");
}

/// Shards share one modeled disk: concurrency still queues on the device
/// even when every instance lives on a different shard — mean REAP
/// latency grows once the batch saturates the bus, and the baseline
/// degrades far more (Fig 9's shape, via the cluster).
#[test]
fn shared_disk_bus_contention_survives_sharding() {
    let funcs = [FunctionId::helloworld, FunctionId::chameleon, FunctionId::pyaes];
    let mut c = ClusterOrchestrator::new(31, 4);
    for f in funcs {
        c.register(f);
        c.invoke_record(f);
    }
    let reap_1 = cluster_concurrent(&mut c, &funcs, ColdPolicy::Reap, 3);
    let reap_48 = cluster_concurrent(&mut c, &funcs, ColdPolicy::Reap, 48);
    assert!(
        reap_48.mean_latency > reap_1.mean_latency,
        "disk-bound at 48: {:.0} ms should exceed {:.0} ms",
        reap_48.mean_latency.as_millis_f64(),
        reap_1.mean_latency.as_millis_f64()
    );
    let vanilla_48 = cluster_concurrent(&mut c, &funcs, ColdPolicy::Vanilla, 48);
    assert!(
        vanilla_48.mean_latency.as_secs_f64() > 3.0 * reap_48.mean_latency.as_secs_f64(),
        "baseline@48 {:.2}s vs reap@48 {:.2}s",
        vanilla_48.mean_latency.as_secs_f64(),
        reap_48.mean_latency.as_secs_f64()
    );
    // Readahead waste: the baseline moves far more raw bytes than useful.
    assert!(vanilla_48.device_mbps > 1.5 * vanilla_48.useful_mbps);
}
