//! The telemetry invariance suite (the archetype deliverable of the
//! telemetry pipeline): attaching a [`TelemetrySink`] must never move a
//! simulated outcome.
//!
//! * **on/off invariance** — `InvocationOutcome` debug renderings are
//!   byte-identical with telemetry on and off, across all four
//!   [`ColdPolicy`] variants (plus record and warm passes) and shard
//!   counts 1/2/3;
//! * **concurrent multiset invariance** — `invoke_concurrent` across
//!   shards 1/2/4 produces the same multiset of span records regardless
//!   of shard geometry and lane interleaving (sorted-dump comparison,
//!   shard column masked);
//! * **span fidelity** — spans mirror their outcomes field-for-field on
//!   the single-orchestrator path.

use functionbench::FunctionId;
use proptest::prelude::*;
use sim_storage::FileStore;
use vhive_cluster::{ClusterOrchestrator, ColdRequest};
use vhive_core::{ColdPolicy, Orchestrator};
use vhive_telemetry::{scan, SpanRecord, TelemetrySink};

const FUNCS: [FunctionId; 2] = [FunctionId::helloworld, FunctionId::pyaes];

/// Registers + records `FUNCS`; optionally with a telemetry sink (over
/// its own store) attached from the very first invocation.
fn prepared_cluster(
    seed: u64,
    shards: usize,
    telemetry: bool,
) -> (ClusterOrchestrator, Option<TelemetrySink>) {
    let mut c = ClusterOrchestrator::new(seed, shards);
    let sink = telemetry.then(|| TelemetrySink::with_batch_rows(FileStore::new(), 8));
    c.set_telemetry(sink.clone());
    for f in FUNCS {
        c.register(f);
        c.invoke_record(f);
    }
    (c, sink)
}

/// The full invocation mix: record (in setup), every cold policy, a warm
/// pass, and a concurrent batch over all policies.
fn run_mix(c: &mut ClusterOrchestrator) -> String {
    let mut dump = String::new();
    for f in FUNCS {
        for policy in ColdPolicy::ALL {
            dump.push_str(&format!("{:?}\n", c.invoke_cold(f, policy)));
        }
        dump.push_str(&format!("{:?}\n", c.invoke_warm(f)));
    }
    let reqs: Vec<ColdRequest> = FUNCS
        .iter()
        .flat_map(|&f| ColdPolicy::ALL.into_iter().map(move |p| ColdRequest::shared(f, p)))
        .collect();
    dump.push_str(&format!("{:?}\n", c.invoke_concurrent(&reqs).outcomes));
    dump
}

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig { cases: 3 })]

    /// Telemetry on vs. off: byte-identical outcome renderings at shard
    /// counts 1, 2 and 3 — and with telemetry on, the sink actually
    /// captured every invocation.
    #[test]
    fn outcomes_invariant_telemetry_on_off(seed in 0u64..10_000) {
        for shards in [1usize, 2, 3] {
            let off = {
                let (mut c, _) = prepared_cluster(seed, shards, false);
                run_mix(&mut c)
            };
            let (mut c, sink) = prepared_cluster(seed, shards, true);
            let on = run_mix(&mut c);
            prop_assert_eq!(&on, &off, "telemetry must not move outcomes (shards={})", shards);
            // 2 records + 2×(4 cold + 1 warm) + 8 concurrent = 20 spans.
            let sink = sink.unwrap();
            sink.flush();
            let (spans, stats) = scan(sink.store());
            prop_assert_eq!(stats.batches_dropped, 0);
            prop_assert_eq!(spans.len(), 20);
        }
    }

    /// The span stream of a concurrent batch is a shard-count-invariant
    /// multiset: sorted dumps (shard masked — the one column geometry is
    /// allowed to move) are byte-identical for shards 1, 2 and 4.
    #[test]
    fn concurrent_span_multiset_invariant_across_shards(seed in 0u64..10_000) {
        let run = |shards: usize| -> String {
            // Sink attached only for the batch itself: setup records are
            // not part of the compared stream.
            let (mut c, _) = prepared_cluster(seed, shards, false);
            let tstore = FileStore::new();
            let sink = TelemetrySink::with_batch_rows(tstore.clone(), 4);
            c.set_telemetry(Some(sink.clone()));
            let reqs: Vec<ColdRequest> = (0..12)
                .map(|i| {
                    let f = FUNCS[i % FUNCS.len()];
                    let p = ColdPolicy::ALL[i % 4];
                    if i % 3 == 0 {
                        ColdRequest::independent(f, p)
                    } else {
                        ColdRequest::shared(f, p)
                    }
                })
                .collect();
            let batch = c.invoke_concurrent(&reqs);
            sink.flush();
            let (mut spans, stats) = scan(&tstore);
            assert_eq!(stats.batches_dropped, 0);
            assert_eq!(spans.len(), batch.outcomes.len());
            for s in &mut spans {
                s.shard = 0;
            }
            spans.sort();
            format!("{spans:#?}")
        };
        let one = run(1);
        for shards in [2usize, 4] {
            prop_assert_eq!(&run(shards), &one, "shards={}", shards);
        }
    }
}

/// Single-orchestrator path: spans mirror their outcomes exactly, the
/// policy labels distinguish record/cold/warm, and outcomes stay
/// byte-identical with telemetry on.
#[test]
fn spans_mirror_outcomes_field_for_field() {
    let f = FunctionId::helloworld;
    let seed = 0xBEE;

    let reference: Vec<String> = {
        let mut o = Orchestrator::new(seed);
        o.register(f);
        let mut v = vec![format!("{:?}", o.invoke_record(f))];
        for p in ColdPolicy::ALL {
            v.push(format!("{:?}", o.invoke_cold(f, p)));
        }
        v.push(format!("{:?}", o.invoke_warm(f)));
        v
    };

    let mut o = Orchestrator::new(seed);
    o.register(f);
    let tstore = FileStore::new();
    let sink = TelemetrySink::new(tstore.clone());
    o.set_telemetry(Some(sink.clone()));
    let mut outcomes = vec![o.invoke_record(f)];
    let mut rendered = vec![format!("{:?}", outcomes[0])];
    for p in ColdPolicy::ALL {
        let out = o.invoke_cold(f, p);
        rendered.push(format!("{out:?}"));
        outcomes.push(out);
    }
    let warm = o.invoke_warm(f);
    rendered.push(format!("{warm:?}"));
    outcomes.push(warm);
    assert_eq!(rendered, reference, "telemetry on must not move outcomes");

    sink.flush();
    let (spans, stats) = scan(&tstore);
    assert_eq!(stats.batches_dropped, 0);
    assert_eq!(spans.len(), outcomes.len());

    let expected_policies = ["Record", "Vanilla", "ParallelPF", "WsFileCached", "Reap", "Warm"];
    for ((span, outcome), want_policy) in spans.iter().zip(&outcomes).zip(expected_policies) {
        assert_eq!(span.policy, want_policy);
        assert_eq!(span.function, outcome.function.to_string());
        assert_eq!(span.shard, 0);
        assert_eq!(span.seq, outcome.seq);
        assert_eq!(span.cold, outcome.policy.is_some());
        assert_eq!(span.recorded, outcome.recorded);
        assert_eq!(span.latency_ns, outcome.latency.as_nanos());
        assert_eq!(span.load_vmm_ns, outcome.breakdown.load_vmm.as_nanos());
        assert_eq!(span.fetch_ws_ns, outcome.breakdown.fetch_ws.as_nanos());
        assert_eq!(span.install_ws_ns, outcome.breakdown.install_ws.as_nanos());
        assert_eq!(span.conn_restore_ns, outcome.breakdown.conn_restore.as_nanos());
        assert_eq!(span.processing_ns, outcome.breakdown.processing.as_nanos());
        assert_eq!(span.record_finish_ns, outcome.breakdown.record_finish.as_nanos());
        assert_eq!(span.transient_retries, outcome.recovery.transient_retries);
        assert_eq!(span.corrupt_reloads, outcome.recovery.corrupt_reloads);
        assert_eq!(span.retry_delay_ns, outcome.recovery.retry_delay.as_nanos());
        assert_eq!(span.quarantined, outcome.recovery.quarantined);
        assert_eq!(span.fallback_vanilla, outcome.recovery.fallback_vanilla);
        assert_eq!(span.rebuilt, outcome.recovery.rebuilt);
        assert_eq!(span.rerouted, outcome.recovery.rerouted);
    }
    // Cold spans under prefetch policies consult the shared frame cache;
    // the REAP span's lookups must be charged to it.
    let reap_span: &SpanRecord = &spans[4];
    assert!(
        reap_span.cache_hits + reap_span.cache_misses + reap_span.cache_raced > 0,
        "REAP cold start must touch the frame cache"
    );
    // Warm invocations never touch it.
    assert_eq!(spans[5].cache_hits + spans[5].cache_misses + spans[5].cache_raced, 0);
}

/// Concurrent batches carry *real* per-request frame-cache attribution:
/// every cold span's hit/miss/raced columns are its own lookups against
/// the shared cache, threaded through `PreparedCold` — not the zeroed
/// columns the emit path used to stamp. Also pins the virtual completion
/// time column: spans complete at their timeline end, never at zero.
#[test]
fn concurrent_spans_carry_nonzero_cache_deltas() {
    let (mut c, _) = prepared_cluster(0xCAFE, 2, false);
    let tstore = FileStore::new();
    let sink = TelemetrySink::with_batch_rows(tstore.clone(), 4);
    c.set_telemetry(Some(sink.clone()));
    let reqs: Vec<ColdRequest> = FUNCS
        .iter()
        .flat_map(|&f| ColdPolicy::ALL.into_iter().map(move |p| ColdRequest::shared(f, p)))
        .collect();
    let batch = c.invoke_concurrent(&reqs);
    sink.flush();
    let (spans, stats) = scan(&tstore);
    assert_eq!(stats.batches_dropped, 0);
    assert_eq!(spans.len(), batch.outcomes.len());
    // Spans emit in request order; every request in this batch is cold
    // and consults the shared frame cache at least for restore
    // verification — zero attribution means the fix regressed.
    for (span, req) in spans.iter().zip(&reqs) {
        assert_eq!(span.function, req.function.to_string());
        let delta = span.cache_hits + span.cache_misses + span.cache_raced;
        assert!(
            delta > 0,
            "concurrent {} span of {} has zeroed cache columns",
            span.policy,
            span.function
        );
        assert_eq!(span.vt_ns, span.latency_ns, "batch arrives at virtual zero");
        assert!(span.vt_ns > 0);
    }
    // REAP spans specifically: prefetch makes them the heaviest cache
    // users in the batch.
    let reap_total: u64 = spans
        .iter()
        .filter(|s| s.policy == "Reap")
        .map(|s| s.cache_hits + s.cache_misses + s.cache_raced)
        .sum();
    assert!(reap_total > 0, "REAP spans must carry cache deltas");
}
