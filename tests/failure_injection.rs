//! Failure injection: corrupt or missing artifacts must be detected, never
//! silently served.

use functionbench::FunctionId;
use vhive_core::{read_trace_file, read_ws_file, ColdPolicy, Orchestrator, WsError};

#[test]
fn corrupt_ws_file_is_rejected() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(31);
    orch.register(f);
    orch.invoke_record(f);
    let ws = orch.fs().open(&format!("snapshots/{f}/ws_pages")).unwrap();
    // Clobber the magic.
    orch.fs().write_at(ws, 0, b"GARBAGE!");
    assert_eq!(read_ws_file(orch.fs(), ws), Err(WsError::BadMagic));
}

#[test]
fn truncated_trace_file_is_rejected() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(32);
    orch.register(f);
    orch.invoke_record(f);
    let trace = orch.fs().open(&format!("snapshots/{f}/ws_trace")).unwrap();
    orch.fs().set_len(trace, 20);
    assert!(matches!(
        read_trace_file(orch.fs(), trace),
        Err(WsError::Truncated { .. })
    ));
}

#[test]
fn prefetch_with_corrupt_ws_file_quarantines_and_falls_back() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(33);
    orch.register(f);
    orch.invoke_record(f);
    let ws = orch.fs().open(&format!("snapshots/{f}/ws_pages")).unwrap();
    orch.fs().write_at(ws, 0, b"GARBAGE!");
    // Stored corruption never crashes an in-flight request: the load is
    // validated, reloaded once, then the function is quarantined and the
    // request completes as Vanilla at the same seq (see
    // crates/core/tests/failure_injection.rs for the full ledger).
    let out = orch.invoke_cold(f, ColdPolicy::Reap);
    assert_eq!(out.policy, Some(ColdPolicy::Vanilla));
    assert!(out.recovery.quarantined);
    assert!(out.recovery.fallback_vanilla);
    assert!(orch.needs_rerecord(f), "fallback schedules a re-record");
}

#[test]
fn rerecord_replaces_corrupt_working_set() {
    // Operator remedy for a bad WS file: record again (§7.2's fallback
    // path); the fresh files must parse and serve prefetches again.
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(34);
    orch.register(f);
    orch.invoke_record(f);
    let ws = orch.fs().open(&format!("snapshots/{f}/ws_pages")).unwrap();
    orch.fs().write_at(ws, 0, b"GARBAGE!");
    // Re-record overwrites both files in place.
    orch.invoke_record(f);
    let entries = read_ws_file(orch.fs(), ws).expect("fresh WS file parses");
    assert!(entries.len() > 1000);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);
    assert!(reap.prefetched_pages > 1000);
}

#[test]
fn corrupt_vmm_state_fails_restore() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(35);
    orch.register(f);
    let vmm = orch.fs().open(&format!("snapshots/{f}/vmm_state")).unwrap();
    orch.fs().write_at(vmm, 100, b"flipped bits");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        orch.invoke_cold(f, ColdPolicy::Vanilla)
    }));
    assert!(result.is_err(), "corrupt VMM state must abort the restore");
}

#[test]
fn zero_length_ws_file_is_detected() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(36);
    orch.register(f);
    orch.invoke_record(f);
    let ws = orch.fs().open(&format!("snapshots/{f}/ws_pages")).unwrap();
    orch.fs().set_len(ws, 0);
    assert!(matches!(
        read_ws_file(orch.fs(), ws),
        Err(WsError::Truncated { .. })
    ));
}
