//! Cross-crate integration: the full REAP lifecycle, end to end.

use functionbench::FunctionId;
use vhive_core::{ColdPolicy, Orchestrator};

#[test]
fn full_lifecycle_register_record_prefetch() {
    let f = FunctionId::pyaes;
    let mut orch = Orchestrator::new(1);
    let info = orch.register(f);
    assert!(info.boot_footprint_bytes > 100 * 1024 * 1024);

    // Vanilla cold start works without any REAP state.
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
    assert!(vanilla.uffd_faults > 2000);
    assert_eq!(vanilla.prefetched_pages, 0);

    // Record once.
    let record = orch.invoke_record(f);
    assert!(record.recorded);
    assert!(orch.has_ws(f));
    // §6.4: recording costs extra over a plain cold start.
    assert!(record.latency > vanilla.latency);
    let overhead = record.latency.as_secs_f64() / vanilla.latency.as_secs_f64() - 1.0;
    assert!(
        (0.05..0.9).contains(&overhead),
        "record overhead {:.0}% should be within the paper's 15-87% band",
        overhead * 100.0
    );

    // Prefetch from then on.
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);
    assert!(reap.latency < vanilla.latency);
    assert!(reap.prefetched_pages > 2000);
    assert!(
        reap.residual_faults * 10 < reap.prefetched_pages,
        "only a small residual should fault: {} of {}",
        reap.residual_faults,
        reap.prefetched_pages
    );
    // Functional correctness: every installed page matched the snapshot.
    assert!(reap.verified_pages >= reap.prefetched_pages);
}

#[test]
fn all_four_policies_order_correctly() {
    // Fig 7's ordering: vanilla > parallel-PFs > WS-file > REAP.
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(2);
    orch.register(f);
    orch.invoke_record(f);
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla).latency;
    let parallel = orch.invoke_cold(f, ColdPolicy::ParallelPF).latency;
    let ws_file = orch.invoke_cold(f, ColdPolicy::WsFileCached).latency;
    let reap = orch.invoke_cold(f, ColdPolicy::Reap).latency;
    assert!(
        vanilla > parallel && parallel > ws_file && ws_file > reap,
        "expected vanilla({vanilla}) > parallelPF({parallel}) > wsfile({ws_file}) > reap({reap})"
    );
}

#[test]
fn warm_beats_everything() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(3);
    orch.register(f);
    orch.invoke_record(f);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap).latency;
    let warm = orch.invoke_warm(f).latency;
    assert!(warm * 10 < reap, "warm {warm} should dwarf REAP {reap}");
}

#[test]
fn repeated_reap_invocations_stay_fast_and_verified() {
    let f = FunctionId::chameleon;
    let mut orch = Orchestrator::new(4);
    orch.register(f);
    orch.invoke_record(f);
    let mut last = None;
    for _ in 0..3 {
        let out = orch.invoke_cold(f, ColdPolicy::Reap);
        assert!(out.verified_pages > 0);
        assert!(out.latency.as_millis_f64() < 250.0);
        // Different inputs every time, but latency stays in a tight band.
        if let Some(prev) = last {
            let ratio = out.latency.as_secs_f64() / prev;
            assert!((0.5..2.0).contains(&ratio), "latency drifted {ratio:.2}x");
        }
        last = Some(out.latency.as_secs_f64());
    }
}

#[test]
fn mispredictions_tracked_for_large_input_functions() {
    let f = FunctionId::image_rotate;
    let mut orch = Orchestrator::new(5);
    orch.register(f);
    orch.invoke_record(f);
    let out = orch.invoke_cold(f, ColdPolicy::Reap);
    let m = out.misprediction.expect("prefetch runs report accuracy");
    // §7.1: misprediction fraction is close to the unique-page fraction —
    // noticeable for image_rotate, but correctness is unaffected.
    assert!(m.fetched > 4000);
    assert!(m.wasted > 0, "different input must waste some pages");
    assert!(m.waste_fraction() < 0.4);
    assert!(out.verified_pages > 0, "wasted pages never corrupt state");
}

#[test]
fn video_processing_triggers_rerecord_fallback() {
    // §7.2: inputs that shift the layout defeat the recorded set; with
    // auto re-record enabled the orchestrator refreshes it.
    let f = FunctionId::video_processing;
    let mut orch = Orchestrator::new(6);
    orch.set_auto_rerecord(true, 0.08);
    orch.register(f);
    orch.invoke_record(f);
    // Drive invocations until one misses enough to flag a re-record.
    let mut flagged = false;
    for _ in 0..6 {
        let out = orch.invoke_cold(f, ColdPolicy::Reap);
        if out.recorded {
            // The fallback kicked in: this run re-recorded.
            flagged = true;
            break;
        }
        if orch.needs_rerecord(f) {
            flagged = true;
        }
    }
    assert!(
        flagged,
        "aspect-ratio shifts should eventually trip the §7.2 detector"
    );
}

#[test]
fn unregister_then_reregister_is_clean() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(8);
    orch.register(f);
    orch.invoke_record(f);
    orch.unregister(f);
    assert!(!orch.has_ws(f));
    orch.register(f);
    let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
    assert!(out.uffd_faults > 1000);
}
