//! Reproducibility: identical seeds must regenerate identical experiments,
//! bit for bit — the property every figure binary relies on.

use functionbench::FunctionId;
use vhive_core::{ColdPolicy, Orchestrator};

#[test]
fn same_seed_same_latencies() {
    let f = FunctionId::pyaes;
    let run = |seed: u64| {
        let mut orch = Orchestrator::new(seed);
        orch.register(f);
        let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
        orch.invoke_record(f);
        let reap = orch.invoke_cold(f, ColdPolicy::Reap);
        (
            vanilla.latency,
            vanilla.uffd_faults,
            reap.latency,
            reap.prefetched_pages,
            reap.residual_faults,
        )
    };
    assert_eq!(run(99), run(99), "same seed must reproduce exactly");
}

#[test]
fn different_seeds_change_inputs_not_shape() {
    let f = FunctionId::helloworld;
    let mut a = Orchestrator::new(1);
    let mut b = Orchestrator::new(2);
    a.register(f);
    b.register(f);
    let out_a = a.invoke_cold(f, ColdPolicy::Vanilla);
    let out_b = b.invoke_cold(f, ColdPolicy::Vanilla);
    // Latency shape is stable across seeds (same function, same platform).
    let ratio = out_a.latency.as_secs_f64() / out_b.latency.as_secs_f64();
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds should not change the latency regime: {ratio:.3}"
    );
}

#[test]
fn snapshot_contents_are_deterministic_per_seed() {
    let f = FunctionId::helloworld;
    let mut a = Orchestrator::new(5);
    let mut b = Orchestrator::new(5);
    a.register(f);
    b.register(f);
    // Both orchestrators wrote a snapshot; their memory files must be
    // byte-identical (same boot, same contents).
    let fa = a.fs().open(&format!("snapshots/{f}/guest_mem")).unwrap();
    let fb = b.fs().open(&format!("snapshots/{f}/guest_mem")).unwrap();
    assert_eq!(a.fs().len(fa), b.fs().len(fb));
    // Spot-check a few pages.
    for page in [0u64, 1000, 30000, 65535] {
        let pa = a.fs().read_at(fa, page * 4096, 4096);
        let pb = b.fs().read_at(fb, page * 4096, 4096);
        assert_eq!(pa, pb, "page {page} differs between identical seeds");
    }
}

#[test]
fn fault_traces_replay_identically() {
    let f = FunctionId::chameleon;
    let run = |seed: u64| {
        let mut orch = Orchestrator::new(seed);
        orch.register(f);
        let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
        out.touched
    };
    let t1 = run(7);
    let t2 = run(7);
    assert_eq!(t1, t2, "working sets must be identical for equal seeds");
}
