//! Reproducibility: identical seeds must regenerate identical experiments,
//! bit for bit — the property every figure binary relies on.

use functionbench::FunctionId;
use vhive_core::{ColdPolicy, Orchestrator};

#[test]
fn same_seed_same_latencies() {
    let f = FunctionId::pyaes;
    let run = |seed: u64| {
        let mut orch = Orchestrator::new(seed);
        orch.register(f);
        let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
        orch.invoke_record(f);
        let reap = orch.invoke_cold(f, ColdPolicy::Reap);
        (
            vanilla.latency,
            vanilla.uffd_faults,
            reap.latency,
            reap.prefetched_pages,
            reap.residual_faults,
        )
    };
    assert_eq!(run(99), run(99), "same seed must reproduce exactly");
}

#[test]
fn different_seeds_change_inputs_not_shape() {
    let f = FunctionId::helloworld;
    let mut a = Orchestrator::new(1);
    let mut b = Orchestrator::new(2);
    a.register(f);
    b.register(f);
    let out_a = a.invoke_cold(f, ColdPolicy::Vanilla);
    let out_b = b.invoke_cold(f, ColdPolicy::Vanilla);
    // Latency shape is stable across seeds (same function, same platform).
    let ratio = out_a.latency.as_secs_f64() / out_b.latency.as_secs_f64();
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds should not change the latency regime: {ratio:.3}"
    );
}

#[test]
fn snapshot_contents_are_deterministic_per_seed() {
    let f = FunctionId::helloworld;
    let mut a = Orchestrator::new(5);
    let mut b = Orchestrator::new(5);
    a.register(f);
    b.register(f);
    // Both orchestrators wrote a snapshot; their memory files must be
    // byte-identical (same boot, same contents).
    let fa = a.fs().open(&format!("snapshots/{f}/guest_mem")).unwrap();
    let fb = b.fs().open(&format!("snapshots/{f}/guest_mem")).unwrap();
    assert_eq!(a.fs().len(fa), b.fs().len(fb));
    // Spot-check a few pages.
    for page in [0u64, 1000, 30000, 65535] {
        let pa = a.fs().read_at(fa, page * 4096, 4096);
        let pb = b.fs().read_at(fb, page * 4096, 4096);
        assert_eq!(pa, pb, "page {page} differs between identical seeds");
    }
}

/// Two orchestrators built from the same `sim_core` RNG seed must
/// produce *byte-identical* timeline reports — the complete
/// `InvocationOutcome` (latency, breakdown phases, fault/prefetch/verify
/// counters, touched-page set, disk counters), compared via its full
/// debug rendering — for every cold policy. This is the contract that
/// lets any figure regenerate bit-for-bit from a seed.
#[test]
fn timeline_reports_byte_identical_across_policies() {
    let f = FunctionId::pyaes;
    let policies = [
        ColdPolicy::Vanilla,
        ColdPolicy::ParallelPF,
        ColdPolicy::WsFileCached,
        ColdPolicy::Reap,
    ];
    let run = |seed: u64| -> Vec<String> {
        let mut orch = Orchestrator::new(seed);
        orch.register(f);
        orch.invoke_record(f);
        policies
            .iter()
            .map(|&p| format!("{:?}", orch.invoke_cold(f, p)))
            .collect()
    };
    let a = run(0xDE7E12);
    let b = run(0xDE7E12);
    for (policy, (ra, rb)) in policies.iter().zip(a.iter().zip(&b)) {
        assert_eq!(
            ra, rb,
            "{policy:?}: reports must be byte-identical for equal seeds"
        );
    }
    // And a different seed must actually change something (the inputs),
    // proving the equality above isn't vacuous.
    let c = run(0xBEEF);
    assert_ne!(a, c, "different seeds must produce different reports");
}

#[test]
fn fault_traces_replay_identically() {
    let f = FunctionId::chameleon;
    let run = |seed: u64| {
        let mut orch = Orchestrator::new(seed);
        orch.register(f);
        let out = orch.invoke_cold(f, ColdPolicy::Vanilla);
        out.touched
    };
    let t1 = run(7);
    let t2 = run(7);
    assert_eq!(t1, t2, "working sets must be identical for equal seeds");
}
