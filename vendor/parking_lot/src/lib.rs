//! Offline stub for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`.read()` / `.write()` / `.lock()` return guards directly). A
//! panicked writer poisons the std lock; we follow parking_lot
//! semantics and hand out the inner guard anyway.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let l = Arc::new(RwLock::new(7u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 7, "guard must be handed out post-panic");
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }
}
