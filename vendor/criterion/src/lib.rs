//! Offline stub for `criterion`.
//!
//! Implements the API surface `crates/bench/benches` uses —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `Throughput` — over a simple
//! wall-clock timer. No statistics beyond a median-of-samples and no
//! HTML reports; each benchmark prints one line:
//!
//! ```text
//! group/name              median   12.345 µs/iter   (342.1 MiB/s)
//! ```
//!
//! Swap for the real criterion in `[workspace.dependencies]` when the
//! build environment has registry access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Per-iteration work annotation used for the rate column.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the stub runs one routine call
/// per batch regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly, recording one sample per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from samples.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6),
        Throughput::Bytes(n) => format!(
            "({:.1} MiB/s)",
            n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
        ),
    });
    println!(
        "{name:40} median {:>12} /iter   {}",
        format_duration(median),
        rate.unwrap_or_default()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Defines a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point: runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        let mut ran = false;
        g.bench_function("b", |b| {
            b.iter_batched(|| 41u64, |x| x + 1, BatchSize::SmallInput);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.000 ms");
    }
}
