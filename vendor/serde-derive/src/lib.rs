//! Offline stub for `serde_derive`.
//!
//! The build container cannot reach crates.io, and the workspace only
//! uses `#[derive(Serialize, Deserialize)]` as metadata (nothing is
//! actually serialized yet), so both derives expand to nothing. When a
//! future PR needs real serialization, point `[workspace.dependencies]`
//! at the real `serde`/`serde_derive` and delete this crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
