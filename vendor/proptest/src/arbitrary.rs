//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

/// Full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-ish domain; NaN/inf corner cases are not what the
        // workspace's properties probe.
        (rng.gen_f64() - 0.5) * 2.0 * 1e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_domain() {
        let mut rng = TestRng::new(11);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[any::<u8>().sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "u8 sampling misses values");
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::new(12);
        let vals: Vec<bool> = (0..64).map(|_| any::<bool>().sample(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
