//! Config and the deterministic sampler behind the stub engine.

/// Run configuration; only `cases` is meaningful in the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs against.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the workspace's properties do
        // heavyweight simulation work per case, so the stub trades case
        // count for suite runtime. Override with PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xoshiro256**-style RNG seeded from the test's name, so
/// every run of a given test samples the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds from a test's fully-qualified name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-sampling fidelity.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("mod::prop");
        let mut b = TestRng::for_test("mod::prop");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("mod::prop_a");
        let mut b = TestRng::for_test("mod::prop_b");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range_u64(13) < 13);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
