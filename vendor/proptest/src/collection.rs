//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max_excl <= self.min + 1 {
            return self.min;
        }
        self.min + rng.gen_range_u64((self.max_excl - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `BTreeSet` of values from `element` targeting a size from `size`.
/// Duplicates are re-drawn a bounded number of times, so the realized
/// set can be smaller than the target when the element domain is small
/// (same caveat as real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 16 + 16 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let mut rng = TestRng::new(21);
        let s = vec(0u64..100, 3..9);
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn vec_exact_len() {
        let mut rng = TestRng::new(22);
        assert_eq!(vec(0u8..2, 5usize).sample(&mut rng).len(), 5);
    }

    #[test]
    fn btree_set_respects_domain_and_min() {
        let mut rng = TestRng::new(23);
        let s = btree_set(0u64..64, 1..32);
        for _ in 0..300 {
            let set = s.sample(&mut rng);
            assert!(!set.is_empty(), "min size 1 must yield a nonempty set");
            assert!(set.len() < 32);
            assert!(set.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = TestRng::new(24);
        let s = vec(vec(0u8..10, 1..4), 2..5);
        let v = s.sample(&mut rng);
        assert!((2..5).contains(&v.len()));
        assert!(v.iter().all(|inner| (1..4).contains(&inner.len())));
    }
}
