//! Offline stub for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace's property tests use, on
//! top of a deterministic random sampler:
//!
//! * [`strategy::Strategy`] with `prop_map`, ranges over ints/floats,
//!   tuples, [`arbitrary::any`], [`collection::vec`] /
//!   [`collection::btree_set`], and [`strategy::Union`] (`prop_oneof!`);
//! * the [`proptest!`] macro (incl. `#![proptest_config(..)]`) plus
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest, by design: sampling is pure random
//! (no shrinking on failure), and the per-test RNG seed is derived from
//! the test's module path + name, so failures reproduce exactly across
//! runs and machines. `PROPTEST_CASES` overrides the case count.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times
/// and runs the body against each sample.
#[macro_export]
macro_rules! proptest {
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> () { $body },
                    ));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} failed for `{}`",
                            case + 1,
                            cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. (Real proptest re-draws; with pure random sampling,
/// skipping is equivalent for the acceptance rates our tests have.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let variants: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat) as _),+];
        $crate::strategy::Union::new(variants)
    }};
}
