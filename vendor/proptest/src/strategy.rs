//! The `Strategy` trait and combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
///
/// The stub keeps proptest's shape (associated `Value`, `prop_map`,
/// unions) but samples directly instead of building shrinkable value
/// trees.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    variants: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range_u64(self.variants.len() as u64) as usize;
        self.variants[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_range_u64(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.gen_f64() as $ty * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-10i64..-2).sample(&mut rng);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = (-1e3f64..1e3).sample(&mut rng);
            assert!((-1e3..1e3).contains(&v));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(3);
        let s = crate::prop_oneof![
            (1u64..5).prop_map(|v| v * 100),
            (7u64..9).prop_map(|v| v),
        ];
        for _ in 0..200 {
            let v: u64 = s.sample(&mut rng);
            assert!((100..=400).contains(&v) || (7..9).contains(&v), "{v}");
        }
    }

    #[test]
    fn tuples_sample_each_component() {
        let mut rng = TestRng::new(4);
        let (a, b) = (0u64..3, 10usize..12).sample(&mut rng);
        assert!(a < 3 && (10..12).contains(&b));
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::new(5);
        assert_eq!(Just(41u8).sample(&mut rng), 41);
    }
}
