//! Offline stub for `bytes`.
//!
//! `BytesMut` here is a thin wrapper over `Vec<u8>` exposing the
//! little-endian append API the REAP file writers use. No zero-copy
//! splitting; swap for the real crate via `[workspace.dependencies]`
//! when networked builds are available.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer, returning the underlying bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Append-oriented write API (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_deref_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"MAGIC!!!");
        b.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(b.len(), 16);
        assert_eq!(&b[..8], b"MAGIC!!!");
        assert_eq!(
            u64::from_le_bytes(b[8..16].try_into().unwrap()),
            0x0102_0304_0506_0708
        );
    }

    #[test]
    fn u8_and_u32_helpers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xAABB_CCDD);
        assert_eq!(&*b, &[7, 0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn vec_also_implements_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u64_le(1);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn into_vec() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        let v: Vec<u8> = b.into();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
