//! Offline stub for `serde`.
//!
//! Provides just enough surface for `use serde::{Deserialize,
//! Serialize};` + `#[derive(...)]` to compile: the derive macros (no-op,
//! from the sibling `serde_derive` stub) and empty marker traits of the
//! same names (traits and derive macros live in different namespaces,
//! exactly like the real crate). Nothing in the workspace serializes
//! data yet; when that changes, swap this for the real serde in the
//! root `[workspace.dependencies]`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    // Namespacing check: deriving and bounding both resolve.
    #[derive(Debug, Clone, PartialEq, crate::Serialize, crate::Deserialize)]
    struct Point {
        x: u64,
        y: u64,
    }

    #[test]
    fn derives_compile_and_are_inert() {
        let p = Point { x: 1, y: 2 };
        assert_eq!(p.clone(), p);
    }
}
