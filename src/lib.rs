//! # reap-repro
//!
//! Umbrella crate for the REAP reproduction (Ustiugov et al., ASPLOS
//! 2021: *Benchmarking, analysis, and optimization of serverless
//! function snapshots*).
//!
//! The actual machinery lives in the workspace crates; this crate
//! re-exports them under one roof so the repo-root integration tests
//! (`tests/`) and examples (`examples/`) have a single dependency
//! surface, and so downstream users can depend on one crate.
//!
//! * [`sim_core`] — discrete-event simulation substrate (virtual time,
//!   event queue, queueing resources, deterministic RNG, stats).
//! * [`sim_storage`] — in-memory file store plus calibrated SSD/HDD
//!   timing models and a Linux-style page cache with readahead.
//! * [`guest_mem`] — guest physical memory with `userfaultfd`-style
//!   lazy paging.
//! * [`guest_os`] — buddy allocator, guest-physical layout, and kernel
//!   touch plans (the determinism engine behind stable working sets).
//! * [`microvm`] — Firecracker-style microVM: boot, pause, snapshot,
//!   restore.
//! * [`functionbench`] — behaviour models of the paper's ten functions.
//! * [`vhive_core`] — the vHive-CRI orchestrator and REAP itself.
//! * [`vhive_cluster`] — the sharded control plane: per-shard
//!   orchestrators and stores, concurrent invocation serving over one
//!   shared modeled disk, shard × lane concurrency sweeps.

pub use functionbench;
pub use guest_mem;
pub use guest_os;
pub use microvm;
pub use sim_core;
pub use sim_storage;
pub use vhive_cluster;
pub use vhive_core;
