//! Cold-start latency anatomy (the Fig 2 view) for a set of functions.
//!
//! Shows where the milliseconds go when a function is restored from a
//! vanilla Firecracker snapshot: loading the VMM, re-establishing the gRPC
//! connection (which faults in the guest's network/agent pages one by
//! one), and the function processing itself — compared against the warm
//! latency of the same function.
//!
//! Run with: `cargo run --release --example coldstart_breakdown [function ...]`

use functionbench::FunctionId;
use sim_core::Table;
use vhive_core::report::fmt_ms0;
use vhive_core::{ColdPolicy, Orchestrator};

fn main() {
    let args: Vec<FunctionId> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let functions = if args.is_empty() {
        vec![
            FunctionId::helloworld,
            FunctionId::pyaes,
            FunctionId::json_serdes,
            FunctionId::cnn_serving,
        ]
    } else {
        args
    };

    let mut orch = Orchestrator::new(7);
    let mut t = Table::new(&[
        "function",
        "warm (ms)",
        "cold (ms)",
        "load VMM",
        "conn restore",
        "processing",
        "faults",
        "cold/warm",
    ]);
    t.numeric();

    for f in functions {
        orch.register(f);
        let warm = orch.invoke_warm(f);
        orch.release_warm(f);
        let cold = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let ratio = cold.latency.as_secs_f64() / warm.latency.as_secs_f64().max(1e-9);
        t.row(&[
            f.name(),
            &fmt_ms0(warm.latency),
            &fmt_ms0(cold.latency),
            &fmt_ms0(cold.breakdown.load_vmm),
            &fmt_ms0(cold.breakdown.conn_restore),
            &fmt_ms0(cold.breakdown.processing),
            &cold.uffd_faults.to_string(),
            &format!("{ratio:.0}x"),
        ]);
        orch.unregister(f);
    }
    println!("{t}");
    println!(
        "Cold invocations run one to two orders of magnitude slower than warm\n\
         ones (§4.2): thousands of page faults are served serially from disk."
    );
}
