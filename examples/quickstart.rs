//! Quickstart: the REAP lifecycle on one function.
//!
//! Registers `helloworld`, measures a warm invocation, a vanilla
//! snapshot cold start, the one-time record invocation, and a REAP
//! prefetched cold start — the end-to-end story of the paper in four
//! invocations.
//!
//! Run with: `cargo run --release --example quickstart`

use functionbench::FunctionId;
use sim_core::Table;
use vhive_core::report::{fmt_ms, speedup};
use vhive_core::{ColdPolicy, Orchestrator};

fn main() {
    let f = FunctionId::helloworld;
    let mut orch = Orchestrator::new(42);

    println!("== registering {f} (boot + snapshot capture) ==");
    let info = orch.register(f);
    println!(
        "booted footprint: {:.0} MB, cold-boot latency: {}",
        info.boot_footprint_bytes as f64 / (1024.0 * 1024.0),
        info.boot_latency,
    );
    println!();

    let warm = orch.invoke_warm(f);
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
    let record = orch.invoke_record(f);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);

    let mut t = Table::new(&[
        "invocation",
        "latency (ms)",
        "load VMM",
        "conn restore",
        "processing",
        "faults",
    ]);
    t.numeric();
    for (name, out) in [
        ("warm", &warm),
        ("vanilla cold", &vanilla),
        ("record (1st REAP)", &record),
        ("REAP prefetch", &reap),
    ] {
        t.row(&[
            name,
            &fmt_ms(out.latency),
            &fmt_ms(out.breakdown.load_vmm),
            &fmt_ms(out.breakdown.conn_restore),
            &fmt_ms(out.breakdown.processing),
            &out.uffd_faults.to_string(),
        ]);
    }
    println!("{t}");

    println!(
        "REAP speedup over vanilla snapshots: {:.1}x (paper: ~3.9x for helloworld)",
        speedup(vanilla.latency, reap.latency)
    );
    println!(
        "page faults eliminated by prefetch: {:.1}% (paper: 97% on average)",
        vhive_core::report::faults_eliminated_pct(&reap)
    );
    println!(
        "every restored page verified against the snapshot: {} pages",
        reap.verified_pages + vanilla.verified_pages
    );
}
