//! REAP vs baseline snapshots across the function suite (the Fig 8 view).
//!
//! For each function: record once, then compare a REAP-prefetched cold
//! start against a vanilla cold start, reporting the speedup and the
//! fraction of page faults the prefetch eliminated.
//!
//! Run with: `cargo run --release --example reap_speedup [function ...]`

use functionbench::FunctionId;
use sim_core::Table;
use vhive_core::report::{faults_eliminated_pct, fmt_ms0, geo_mean_speedup, speedup};
use vhive_core::{ColdPolicy, Orchestrator};

fn main() {
    let args: Vec<FunctionId> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let functions = if args.is_empty() {
        vec![
            FunctionId::helloworld,
            FunctionId::chameleon,
            FunctionId::pyaes,
            FunctionId::lr_serving,
            FunctionId::rnn_serving,
        ]
    } else {
        args
    };

    let mut orch = Orchestrator::new(3);
    let mut t = Table::new(&[
        "function",
        "vanilla (ms)",
        "REAP (ms)",
        "speedup",
        "faults gone",
        "paper speedup",
    ]);
    t.numeric();

    let mut pairs = Vec::new();
    for f in functions {
        orch.register(f);
        let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
        let _record = orch.invoke_record(f);
        let reap = orch.invoke_cold(f, ColdPolicy::Reap);
        let paper = &f.spec().paper;
        t.row(&[
            f.name(),
            &fmt_ms0(vanilla.latency),
            &fmt_ms0(reap.latency),
            &format!("{:.1}x", speedup(vanilla.latency, reap.latency)),
            &format!("{:.1}%", faults_eliminated_pct(&reap)),
            &format!("{:.1}x", paper.cold_ms / paper.reap_ms),
        ]);
        pairs.push((vanilla.latency, reap.latency));
        orch.unregister(f);
    }
    println!("{t}");
    if let Some(g) = geo_mean_speedup(&pairs) {
        println!("geometric-mean speedup: {g:.2}x (paper, all 10 functions: 3.7x)");
    }
}
