//! The economics that motivate snapshots (§1, §2.1, §4.3): what does it
//! cost to colocate a fleet of functions on one worker?
//!
//! Serverless providers aim for thousands of instances per host. Keeping
//! them all warm pins their full booted footprints in DRAM; snapshotting
//! frees the memory but pays a cold start on each (infrequent)
//! invocation. This example sizes both, using Azure-like invocation rates
//! (90% of functions fire less than once per minute) and the measured
//! booted vs restored footprints of the suite.
//!
//! Run with: `cargo run --release --example colocation_memory [n_functions]`

use functionbench::{FunctionId, WorkloadGenerator};
use sim_core::{SimDuration, Table};
use vhive_core::{ColdPolicy, Orchestrator};

fn main() {
    let fleet: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("fleet size"))
        .unwrap_or(4000);

    // Measure one representative function per weight class.
    let mut orch = Orchestrator::new(9);
    let f = FunctionId::helloworld;
    let info = orch.register(f);
    let vanilla = orch.invoke_cold(f, ColdPolicy::Vanilla);
    orch.invoke_record(f);
    let reap = orch.invoke_cold(f, ColdPolicy::Reap);

    let booted_mb = info.boot_footprint_bytes as f64 / 1e6;
    let ws_mb = reap.footprint_bytes as f64 / 1e6;

    // Azure-like arrival rates across the fleet (§2.1).
    let gen = WorkloadGenerator::new(17);
    let mut cold_per_minute = 0.0;
    let keep_warm_window = SimDuration::from_secs(10 * 60); // 10-min keep-alive
    let mut stays_warm = 0u64;
    for i in 0..fleet {
        let gap = gen.azure_like_gap(i);
        if gap < keep_warm_window {
            stays_warm += 1; // re-invoked before the keep-alive expires
        } else {
            cold_per_minute += 60.0 / gap.as_secs_f64();
        }
    }

    let mut t = Table::new(&["strategy", "DRAM for fleet", "cold starts/min", "p-cold latency"]);
    t.numeric();
    t.row(&[
        "keep everything warm",
        &format!("{:.0} GB", fleet as f64 * booted_mb / 1000.0),
        "0",
        "-",
    ]);
    t.row(&[
        "vanilla snapshots",
        &format!("{:.0} GB", stays_warm as f64 * booted_mb / 1000.0),
        &format!("{cold_per_minute:.0}"),
        &format!("{:.0} ms", vanilla.latency.as_millis_f64()),
    ]);
    t.row(&[
        "REAP snapshots",
        &format!(
            "{:.0} GB (+{:.1} GB WS files on SSD)",
            stays_warm as f64 * booted_mb / 1000.0,
            fleet as f64 * ws_mb / 1000.0
        ),
        &format!("{cold_per_minute:.0}"),
        &format!("{:.0} ms", reap.latency.as_millis_f64()),
    ]);
    println!("fleet of {fleet} functions, helloworld-class ({booted_mb:.0} MB booted, {ws_mb:.1} MB working set):\n");
    println!("{t}");
    println!(
        "Keeping the whole fleet warm costs {:.0} GB of DRAM (§1: \"hundreds of\n\
         GBs\"); snapshots cut that to the actively-warm tail, and REAP makes\n\
         the resulting cold starts {:.1}x faster than vanilla lazy paging.",
        fleet as f64 * booted_mb / 1000.0,
        vanilla.latency.as_secs_f64() / reap.latency.as_secs_f64(),
    );
}
